//! `carat-cli` — command-line front end for the CARAT reproduction.
//!
//! ```sh
//! carat-cli compare --workload mb8 --n 4..20
//! carat-cli model --workload lb8 --n 8 --separate-log
//! carat-cli sim --workload mb4 --n 12 --hotspot 0.1:0.9 --probes
//! ```

mod args;

use args::{parse, Command, RunSpec, USAGE};
use carat::model::{Model, ModelConfig, ModelOptions, ModelReport, WarmStart};
use carat::obs::{
    shardstats, IterLog, MetricsConfig, MetricsFilter, MetricsRecorder, ShardStatsSnapshot,
    TraceConfig, TraceFilter, Tracer,
};
use carat::sim::{DeadlockMode, Sim, SimConfig, SimReport};
use carat_bench::{run_replications, ReplicatedReport, SweepOptions};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse(&argv) {
        Ok(Command::Help) => print!("{USAGE}"),
        Ok(Command::Model(spec)) => {
            let mut warm = Warm::default();
            let mut log = spec.iter_log.as_ref().map(|_| IterLog::new());
            for &n in &spec.n_values {
                if let Some(log) = log.as_mut() {
                    log.begin_point(format!("{:?}/n={n}", spec.workload));
                }
                print_model(n, &run_model(&spec, n, &mut warm, log.as_mut()));
            }
            if let (Some(path), Some(log)) = (&spec.iter_log, &log) {
                write_iter_log(path, log);
            }
        }
        Ok(Command::Sim(spec)) => {
            let mut corrupt = false;
            if spec.reps > 1 {
                for (&n, rep) in spec.n_values.iter().zip(&run_sim_replicated(&spec)) {
                    print_replicated(n, rep);
                    corrupt |= rep.reports.iter().any(|r| check_integrity(r).is_err());
                }
            } else {
                if spec.trace.is_some() && spec.n_values.len() > 1 {
                    eprintln!("error: --trace records one run; give a single --n value");
                    std::process::exit(2);
                }
                if spec.metrics_ms.is_some() && spec.n_values.len() > 1 {
                    eprintln!("error: --metrics records one run; give a single --n value");
                    std::process::exit(2);
                }
                for &n in &spec.n_values {
                    // Scoped shard telemetry: the delta attributes
                    // busy/stall/null totals to this run alone, even in a
                    // process that runs several points.
                    let scope = shardstats::begin_run();
                    let (report, tracer, metrics) = run_sim_instrumented(&spec, n);
                    let shard_delta = scope.finish();
                    print_sim(n, &report);
                    if let Some(metrics) = &metrics {
                        print_metrics_summary(&spec, metrics, &shard_delta);
                        if let Some(path) = &spec.metrics_out {
                            write_metrics(path, metrics);
                        }
                    }
                    if let (Some(path), Some(tracer)) = (&spec.trace, &tracer) {
                        write_trace(path, tracer, metrics.as_ref());
                    }
                    if let Err(why) = check_integrity(&report) {
                        eprintln!("error: integrity check failed: {why}");
                        corrupt = true;
                    }
                }
            }
            if corrupt {
                std::process::exit(1);
            }
        }
        Ok(Command::Compare(spec)) => {
            println!(
                "| n  | node | sim tx/s | model tx/s | sim CPU | model CPU | sim DIO | model DIO |"
            );
            println!(
                "|----|------|----------|------------|---------|-----------|---------|-----------|"
            );
            let mut warm = Warm::default();
            for &n in &spec.n_values {
                let s = run_sim(&spec, n);
                let m = run_model(&spec, n, &mut warm, None);
                for i in 0..s.nodes.len() {
                    println!(
                        "| {:2} | {}    |    {:5.2} |      {:5.2} |    {:4.2} |      {:4.2} |   {:5.1} |     {:5.1} |",
                        n,
                        s.nodes[i].name,
                        s.nodes[i].tx_per_s,
                        m.nodes[i].tx_per_s,
                        s.nodes[i].cpu_util,
                        m.nodes[i].cpu_util,
                        s.nodes[i].dio_per_s,
                        m.nodes[i].dio_per_s,
                    );
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}

/// Warm-start state threaded through an ascending-n model sweep.
#[derive(Default)]
struct Warm(Option<WarmStart>);

fn run_model(spec: &RunSpec, n: u32, warm: &mut Warm, log: Option<&mut IterLog>) -> ModelReport {
    let mut cfg = ModelConfig::new(spec.workload.spec(spec.sites), n);
    cfg.params = spec.params();
    let opts = ModelOptions {
        separate_log_disk: spec.separate_log,
        model_tm_serialization: spec.tm_center,
        threads: spec.threads,
        accel: spec.accel,
        mva: spec.mva,
        ..ModelOptions::default()
    };
    let seed = if spec.warm_start {
        warm.0.as_ref()
    } else {
        None
    };
    let (report, snapshot) = Model::with_options(cfg, opts).solve_logged(seed, log);
    warm.0 = Some(snapshot);
    report
}

fn sim_cfg(spec: &RunSpec, n: u32) -> SimConfig {
    let mut cfg = SimConfig::new(spec.workload.spec(spec.sites), n, spec.seed);
    cfg.params = spec.params();
    cfg.shards = spec.effective_shards();
    cfg.warmup_ms = (spec.measure_s * 1000.0 * 0.1).max(5_000.0);
    cfg.measure_ms = spec.measure_s * 1000.0;
    cfg.separate_log_disk = spec.separate_log;
    cfg.deadlock_mode = if spec.probes {
        DeadlockMode::Probes
    } else {
        DeadlockMode::InstantGlobal
    };
    cfg.cc = spec.cc;
    cfg.victim = spec.victim;
    cfg.crashes = spec.crashes.clone();
    cfg.fault_plan = spec.fault;
    cfg.partition_plan = spec.partition.clone();
    cfg.max_events = spec.max_events;
    if let Err(e) = cfg.validate() {
        eprintln!("error: invalid configuration: {e}");
        std::process::exit(2);
    }
    cfg
}

fn run_sim(spec: &RunSpec, n: u32) -> SimReport {
    run_sim_instrumented(spec, n).0
}

/// Runs one simulation, attaching a tracer when `--trace` was given and a
/// metrics recorder when `--metrics` was given.
fn run_sim_instrumented(
    spec: &RunSpec,
    n: u32,
) -> (SimReport, Option<Tracer>, Option<MetricsRecorder>) {
    let mut cfg = sim_cfg(spec, n);
    if spec.trace.is_some() {
        let filter = match &spec.trace_filter {
            // Parse errors are caught in args.rs; this cannot fail here.
            Some(s) => TraceFilter::parse(s).expect("filter validated at parse time"),
            None => TraceFilter::all(),
        };
        cfg.trace = Some(TraceConfig {
            filter,
            ..TraceConfig::default()
        });
    }
    if let Some(sample_ms) = spec.metrics_ms {
        let filter = match &spec.metrics_filter {
            // Parse errors are caught in args.rs; this cannot fail here.
            Some(s) => MetricsFilter::parse(s).expect("filter validated at parse time"),
            None => MetricsFilter::all(),
        };
        cfg.metrics = Some(MetricsConfig { sample_ms, filter });
    }
    if cfg.shards > 1
        && !carat::sim::shard::decomposable(&cfg)
        && !carat::sim::shard::coupled_eligible(&cfg)
    {
        // Stderr only: stdout must stay byte-identical to a --shards 1
        // run (the CI determinism gates compare it).
        eprintln!(
            "note: --shards {} requested, but this configuration is not \
             site-parallel (it needs either local-only sites, or cross-site \
             traffic with --alpha > 0 — plus --probes under 2PL — and no \
             crash/fault/partition/replication machinery); running the \
             monolithic engine on one thread",
            cfg.shards
        );
    }
    let sim = match Sim::new(cfg) {
        Ok(sim) => sim,
        Err(e) => {
            eprintln!("error: invalid configuration: {e}");
            std::process::exit(2);
        }
    };
    match sim.run_checked_instrumented() {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Satellite integrity gate: a run whose commit audit found corrupted
/// records — or whose profiling counters are self-contradictory — must
/// fail the process, not just print a number nobody reads.
fn check_integrity(r: &SimReport) -> Result<(), String> {
    if r.audit_violations > 0 {
        return Err(format!(
            "{} of {} audited records hold bytes from a non-committed writer",
            r.audit_violations, r.audited_records
        ));
    }
    let slab_hwm = r.counters.get("slab_hwm");
    let slots = r.counters.get("slab_slots_hwm");
    if slab_hwm > slots {
        return Err(format!(
            "slab occupancy high-water {slab_hwm} exceeds allocated slots {slots}"
        ));
    }
    Ok(())
}

fn write_trace(path: &str, tracer: &Tracer, metrics: Option<&MetricsRecorder>) {
    let body = if path.ends_with(".jsonl") {
        // Line-delimited lifecycle events only; counter tracks are a
        // Chrome trace-event concept.
        tracer.to_jsonl()
    } else {
        tracer.to_chrome_json_with(metrics)
    };
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("error: cannot write trace {path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "trace: {} events written to {path} ({} dropped by the ring buffer)",
        tracer.len(),
        tracer.dropped()
    );
}

fn write_metrics(path: &str, metrics: &MetricsRecorder) {
    let body = if path.ends_with(".csv") {
        metrics.to_csv()
    } else if path.ends_with(".json") {
        metrics.to_chrome_json()
    } else {
        metrics.to_jsonl()
    };
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("error: cannot write metrics {path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "metrics: {} samples written to {path}",
        metrics.samples().len()
    );
}

/// The end-of-run metrics monitor, on stderr so stdout stays
/// byte-identical to a metrics-free run (the CI neutrality gate compares
/// it): per-metric aggregates with a sparkline of the run's shape, and —
/// when the sharded engines actually ran — the wall-clock busy/stall
/// split of the conservative protocol for this run alone.
fn print_metrics_summary(spec: &RunSpec, metrics: &MetricsRecorder, shard: &ShardStatsSnapshot) {
    let cadence = spec.metrics_ms.unwrap_or_default();
    eprintln!(
        "metrics: {} samples at {cadence} ms sim-time cadence",
        metrics.samples().len()
    );
    for s in metrics.summarize(40) {
        eprintln!(
            "  {:<14} n={:<6} min {:>10.2} mean {:>10.2} max {:>10.2} p95 {:>10.2}  {}",
            s.kind.label(),
            s.count,
            s.min,
            s.mean,
            s.max,
            s.p95,
            s.spark
        );
    }
    if shard.busy_ns + shard.stall_ns > 0 {
        let busy_ms = shard.busy_ns as f64 / 1e6;
        let stall_ms = shard.stall_ns as f64 / 1e6;
        let stall_pct = 100.0 * stall_ms / (busy_ms + stall_ms);
        eprintln!(
            "  shards: busy {busy_ms:.1} ms, stalled {stall_ms:.1} ms ({stall_pct:.0}% of \
             wall) | {} null advances / {} cross-shard messages (ratio {:.2})",
            shard.null_advances,
            shard.messages,
            shard.null_message_ratio()
        );
    }
}

fn write_iter_log(path: &str, log: &IterLog) {
    let body = if path.ends_with(".csv") {
        log.to_csv()
    } else {
        log.to_json()
    };
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("error: cannot write iteration log {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("iter-log: {} rows written to {path}", log.len());
}

/// `--reps R`: R independent replications per transaction size on the
/// deterministic worker pool (`--threads`), reported as mean ± 95 % CI.
fn run_sim_replicated(spec: &RunSpec) -> Vec<ReplicatedReport> {
    let opts = SweepOptions {
        threads: spec.threads,
        warm: false,
        partition_seed: 0,
    };
    let cfgs = spec.n_values.iter().map(|&n| sim_cfg(spec, n)).collect();
    run_replications(cfgs, spec.reps, &opts)
}

fn print_model(n: u32, r: &ModelReport) {
    println!(
        "model: n = {n} ({} iterations, residual {:.2e}{})",
        r.convergence.iterations,
        r.convergence.residual,
        if r.convergence.warm_started {
            ", warm-started"
        } else {
            ""
        }
    );
    if !r.convergence.converged {
        eprintln!(
            "warning: model did not converge after {} iterations (residual {:.2e}); \
             results are the last iterate",
            r.convergence.iterations, r.convergence.residual
        );
    }
    for node in &r.nodes {
        println!(
            "  node {}: {:.2} tx/s | CPU {:.0}% | disk {:.0}%{} | {:.1} I/O-s | {:.1} rec/s",
            node.name,
            node.tx_per_s,
            node.cpu_util * 100.0,
            node.disk_util * 100.0,
            if node.log_disk_util > 0.0 {
                format!(" | log {:.0}%", node.log_disk_util * 100.0)
            } else {
                String::new()
            },
            node.dio_per_s,
            node.records_per_s,
        );
        for (ty, t) in &node.per_type {
            println!(
                "    {ty:3}: {:6.3} tx/s  R = {:8.1} ms  Pb = {:.4}  Pd = {:.4}  P_a = {:.3}  N_s = {:.2}",
                t.xput_per_s, t.response_ms, t.pb, t.pd, t.p_a, t.n_s
            );
        }
    }
}

fn print_sim(n: u32, r: &SimReport) {
    println!("sim: n = {n} ({:.0} s measured)", r.window_ms / 1000.0);
    for node in &r.nodes {
        println!(
            "  node {}: {:.2} tx/s | CPU {:.0}% | disk {:.0}%{} | {:.1} I/O-s | {:.1} rec/s",
            node.name,
            node.tx_per_s,
            node.cpu_util * 100.0,
            node.disk_util * 100.0,
            if node.log_disk_util > 0.0 {
                format!(" | log {:.0}%", node.log_disk_util * 100.0)
            } else {
                String::new()
            },
            node.dio_per_s,
            node.records_per_s,
        );
        for (ty, t) in &node.per_type {
            println!(
                "    {ty:3}: {:6.3} tx/s  R = {:8.1} ms (p50 {:.0}, p95 {:.0})  commits {:5}  aborts {:4}",
                t.xput_per_s,
                t.mean_response_ms,
                t.p50_response_ms,
                t.p95_response_ms,
                t.commits,
                t.aborts
            );
        }
    }
    println!(
        "  locks: {} requests, Pb = {:.4}, mean wait {:.0} ms | deadlocks {} local / {} global ({} probe hops)",
        r.lock_requests,
        r.blocking_probability(),
        r.mean_lock_wait_ms,
        r.local_deadlocks,
        r.global_deadlocks,
        r.probe_hops,
    );
    if r.crashes > 0 {
        println!(
            "  crashes: {} injected, {} transactions killed, {} recoveries",
            r.crashes, r.crash_kills, r.recoveries
        );
    }
    if r.net_messages > 0 {
        println!(
            "  network: {} messages, {} dropped, {} duplicated, {} retries | \
             {} timeout aborts, {} in-doubt resolved",
            r.net_messages,
            r.net_drops,
            r.net_duplicates,
            r.net_retries,
            r.timeout_aborts,
            r.in_doubt_resolutions,
        );
    }
    let a = &r.availability;
    // Printed only when a partition or replica actually did something, so
    // partition-free output stays byte-identical to earlier builds.
    if a.partitions + a.heals + a.partition_aborts + a.blocked_on_heal > 0
        || a.stale_reads + a.degraded_reads + a.failovers + a.catchup_records > 0
        || a.partition_ms > 0.0
    {
        println!(
            "  partitions: {} splits, {} heals, {:.0} ms split | {} partition aborts, \
             {} blocked until heal, {} stale reads",
            a.partitions,
            a.heals,
            a.partition_ms,
            a.partition_aborts,
            a.blocked_on_heal,
            a.stale_reads,
        );
        println!(
            "  replicas: {} failovers, {} degraded reads, {} catch-up records",
            a.failovers, a.degraded_reads, a.catchup_records,
        );
    }
    println!(
        "  audit: {} records checked, {} violations",
        r.audited_records, r.audit_violations
    );
    println!(
        "  profile: {} events | scheduler-heap hwm {} | tx-slab hwm {} of {} slots",
        r.counters.get("events_total"),
        r.counters.get("sched_heap_hwm"),
        r.counters.get("slab_hwm"),
        r.counters.get("slab_slots_hwm"),
    );
}

fn print_replicated(n: u32, r: &ReplicatedReport) {
    let first = &r.reports[0];
    println!(
        "sim: n = {n} ({} replications x {:.0} s measured; mean ± 95% CI)",
        r.reps(),
        first.window_ms / 1000.0
    );
    for (i, node) in first.nodes.iter().enumerate() {
        let tx = r.metric(|rep| rep.nodes[i].tx_per_s);
        let cpu = r.metric(|rep| rep.nodes[i].cpu_util);
        let dio = r.metric(|rep| rep.nodes[i].dio_per_s);
        let rec = r.metric(|rep| rep.nodes[i].records_per_s);
        println!(
            "  node {}: {:.2} ± {:.2} tx/s | CPU {:.0} ± {:.0}% | {:.1} ± {:.1} I/O-s | {:.1} ± {:.1} rec/s",
            node.name,
            tx.mean, tx.ci95,
            cpu.mean * 100.0, cpu.ci95 * 100.0,
            dio.mean, dio.ci95,
            rec.mean, rec.ci95,
        );
    }
    println!(
        "  total: {:.2} ± {:.2} tx/s | {:.1} ± {:.1} rec/s | mean lock wait {:.0} ± {:.0} ms",
        r.tx_per_s.mean,
        r.tx_per_s.ci95,
        r.records_per_s.mean,
        r.records_per_s.ci95,
        r.mean_lock_wait_ms.mean,
        r.mean_lock_wait_ms.ci95,
    );
}
