//! Transaction and chain types.

/// User-visible synthetic transaction types (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TxType {
    /// Local read-only.
    Lro,
    /// Local update.
    Lu,
    /// Distributed read-only.
    Dro,
    /// Distributed update.
    Du,
}

impl TxType {
    /// All four types, in the paper's order.
    pub const ALL: [TxType; 4] = [TxType::Lro, TxType::Lu, TxType::Dro, TxType::Du];

    /// True for LU and DU.
    pub fn is_update(self) -> bool {
        matches!(self, TxType::Lu | TxType::Du)
    }

    /// True for DRO and DU.
    pub fn is_distributed(self) -> bool {
        matches!(self, TxType::Dro | TxType::Du)
    }

    /// The chain type of this transaction's coordinator part.
    pub fn coordinator_chain(self) -> ChainType {
        match self {
            TxType::Lro => ChainType::Lro,
            TxType::Lu => ChainType::Lu,
            TxType::Dro => ChainType::Droc,
            TxType::Du => ChainType::Duc,
        }
    }

    /// The chain type of this transaction's slave part (distributed types
    /// only).
    pub fn slave_chain(self) -> Option<ChainType> {
        match self {
            TxType::Dro => Some(ChainType::Dros),
            TxType::Du => Some(ChainType::Dus),
            _ => None,
        }
    }

    /// Short label as used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            TxType::Lro => "LRO",
            TxType::Lu => "LU",
            TxType::Dro => "DRO",
            TxType::Du => "DU",
        }
    }
}

impl std::fmt::Display for TxType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Model chain types (paper §4.2): `T = {LRO, LU, DROC, DUC, DROS, DUS}`.
///
/// A distributed transaction is decomposed into one coordinator chain at its
/// home site and one slave chain at each participating remote site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChainType {
    /// Local read-only.
    Lro,
    /// Local update.
    Lu,
    /// Distributed read-only coordinator.
    Droc,
    /// Distributed update coordinator.
    Duc,
    /// Distributed read-only slave.
    Dros,
    /// Distributed update slave.
    Dus,
}

impl ChainType {
    /// All six chain types, in the paper's order.
    pub const ALL: [ChainType; 6] = [
        ChainType::Lro,
        ChainType::Lu,
        ChainType::Droc,
        ChainType::Duc,
        ChainType::Dros,
        ChainType::Dus,
    ];

    /// True for chains that take exclusive locks (LU, DUC, DUS).
    ///
    /// This is the blocking set of paper Eq. 15: a shared request is blocked
    /// only by these chains' held locks.
    pub fn is_update(self) -> bool {
        matches!(self, ChainType::Lu | ChainType::Duc | ChainType::Dus)
    }

    /// True for DROC/DUC.
    pub fn is_coordinator(self) -> bool {
        matches!(self, ChainType::Droc | ChainType::Duc)
    }

    /// True for DROS/DUS.
    pub fn is_slave(self) -> bool {
        matches!(self, ChainType::Dros | ChainType::Dus)
    }

    /// True for LRO/LU.
    pub fn is_local(self) -> bool {
        matches!(self, ChainType::Lro | ChainType::Lu)
    }

    /// The matching slave chain of a coordinator chain (and vice versa).
    pub fn counterpart(self) -> Option<ChainType> {
        match self {
            ChainType::Droc => Some(ChainType::Dros),
            ChainType::Duc => Some(ChainType::Dus),
            ChainType::Dros => Some(ChainType::Droc),
            ChainType::Dus => Some(ChainType::Duc),
            _ => None,
        }
    }

    /// The user transaction type this chain belongs to.
    pub fn user_type(self) -> TxType {
        match self {
            ChainType::Lro => TxType::Lro,
            ChainType::Lu => TxType::Lu,
            ChainType::Droc | ChainType::Dros => TxType::Dro,
            ChainType::Duc | ChainType::Dus => TxType::Du,
        }
    }

    /// Short label as used in the paper.
    pub fn label(self) -> &'static str {
        match self {
            ChainType::Lro => "LRO",
            ChainType::Lu => "LU",
            ChainType::Droc => "DROC",
            ChainType::Duc => "DUC",
            ChainType::Dros => "DROS",
            ChainType::Dus => "DUS",
        }
    }
}

impl std::fmt::Display for ChainType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_and_distributed_flags() {
        assert!(!TxType::Lro.is_update());
        assert!(TxType::Lu.is_update());
        assert!(TxType::Du.is_update() && TxType::Du.is_distributed());
        assert!(TxType::Dro.is_distributed() && !TxType::Dro.is_update());
    }

    #[test]
    fn chain_decomposition() {
        assert_eq!(TxType::Dro.coordinator_chain(), ChainType::Droc);
        assert_eq!(TxType::Dro.slave_chain(), Some(ChainType::Dros));
        assert_eq!(TxType::Lu.slave_chain(), None);
        assert_eq!(ChainType::Duc.counterpart(), Some(ChainType::Dus));
        assert_eq!(ChainType::Lro.counterpart(), None);
    }

    #[test]
    fn blocking_set_matches_eq15() {
        let blockers: Vec<ChainType> = ChainType::ALL
            .into_iter()
            .filter(|c| c.is_update())
            .collect();
        assert_eq!(
            blockers,
            vec![ChainType::Lu, ChainType::Duc, ChainType::Dus]
        );
    }

    #[test]
    fn user_type_roundtrip() {
        for c in ChainType::ALL {
            let t = c.user_type();
            match c {
                ChainType::Lro | ChainType::Lu => assert_eq!(t.coordinator_chain(), c),
                ChainType::Droc | ChainType::Duc => assert_eq!(t.coordinator_chain(), c),
                _ => assert_eq!(t.slave_chain(), Some(c)),
            }
        }
    }
}
