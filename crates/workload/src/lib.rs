//! # carat-workload — synthetic transaction workloads and basic parameters
//!
//! The parameterised synthetic workload of the paper (§2):
//!
//! * four **transaction types** — local read-only (LRO), local update (LU),
//!   distributed read-only (DRO), distributed update (DU) — which the model
//!   decomposes into six **chain types** by splitting each distributed type
//!   into a coordinator and slave part (§4.2);
//! * the four **standard workloads** used for validation — LB8, MB4, MB8,
//!   UB6 — as per-node user populations;
//! * the **Table 2 basic parameter values** (milliseconds) for Node A
//!   (DEC RM05 database disk) and Node B (DEC RP06), plus the derived phase
//!   costs the paper takes from \[JENQ86\] (re-derived in DESIGN.md §6);
//! * the database geometry: 3 000 blocks per site, 6 records per block,
//!   4 records accessed per request, uniform random record selection.
//!
//! Everything here is shared *verbatim* by the analytical model
//! (`carat-model`) and the testbed simulator (`carat-sim`) so that both
//! sides of every model-vs-measurement comparison are parameterised
//! identically, exactly as in the paper's validation methodology.

pub mod params;
pub mod spec;
pub mod types;

pub use params::{AccessPattern, BasicParams, NodeParams, SystemParams};
pub use spec::{StandardWorkload, WorkloadSpec};
pub use types::{ChainType, TxType};
