//! Basic parameter values (paper Table 2) and derived phase costs.
//!
//! All times in **milliseconds**. The six measured basic parameters per
//! transaction type and node are Table 2 of the paper; the remaining phase
//! costs (INIT, TC, TCIO, TA, TAIO, UL) were calibrated in \[JENQ86\] and
//! are re-derived from the CARAT message flows in DESIGN.md §6. Both the
//! analytical model and the simulator draw every cost from this module, so
//! the two sides of each validation experiment are parameterised
//! identically.

use crate::types::ChainType;

/// How transactions pick the records they access.
///
/// The paper's experiments were uniform ("transactions access records
/// randomly and uniformly", §3) and its §7 lists "nonuniform and nonrandom
/// database access patterns" as needed future work — this enum supplies
/// the classic b–c skew (e.g. 80 % of accesses to 20 % of the data) for
/// both the simulator and the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Every record equally likely (the paper's assumption).
    Uniform,
    /// A fraction `hot_access_prob` of accesses goes to the first
    /// `hot_data_frac` of the records.
    Hotspot {
        /// Fraction of the database that is hot (0 < x < 1).
        hot_data_frac: f64,
        /// Fraction of accesses that hit the hot set (0 < x < 1).
        hot_access_prob: f64,
    },
}

impl AccessPattern {
    /// Contention inflation relative to uniform access.
    ///
    /// For the blocking probability the only thing that matters is the
    /// chance that a requested granule coincides with a held one. With a
    /// two-temperature skew (probability `p` on a fraction `h` of the
    /// granules) both the request and the held lock land hot with
    /// probability `p`, so
    ///
    /// ```text
    /// P[collision] = (1/N_g) · (p²/h + (1−p)²/(1−h)) = factor / N_g
    /// ```
    ///
    /// Uniform access (`p = h`) gives factor 1; skew always gives ≥ 1.
    pub fn contention_factor(&self) -> f64 {
        match *self {
            AccessPattern::Uniform => 1.0,
            AccessPattern::Hotspot {
                hot_data_frac: h,
                hot_access_prob: p,
            } => {
                assert!((0.0..1.0).contains(&h) && h > 0.0, "bad hot_data_frac {h}");
                assert!(
                    (0.0..1.0).contains(&p) && p > 0.0,
                    "bad hot_access_prob {p}"
                );
                p * p / h + (1.0 - p) * (1.0 - p) / (1.0 - h)
            }
        }
    }
}

/// CPU-time basic parameters (identical for Node A and Node B in Table 2 —
/// both were VAX 11/780s; only the disks differed).
#[derive(Debug, Clone, Copy)]
pub struct BasicParams {
    /// `R_U`: user application processing per request (7.8).
    pub r_u: f64,
    /// `R_TM` for local transactions: TM message processing (8.0).
    pub r_tm_local: f64,
    /// `R_TM` for distributed transactions: includes network send/receive
    /// CPU (12.0).
    pub r_tm_dist: f64,
    /// `R_DM` per DM-phase visit, read request (5.4).
    pub r_dm_read: f64,
    /// `R_DM` per DM-phase visit, update request (8.6).
    pub r_dm_update: f64,
    /// `R_LR`: lock request processing incl. local deadlock detection (2.2).
    pub r_lr: f64,
    /// `R_DMIO` CPU part, read (1.5).
    pub r_dmio_cpu_read: f64,
    /// `R_DMIO` CPU part, update (2.5).
    pub r_dmio_cpu_update: f64,
    /// TM messages processed during INIT (TBEGIN + DBOPEN → 2).
    pub init_tm_msgs: f64,
    /// CPU to release one lock, as a fraction of `R_LR` (release does no
    /// deadlock search).
    pub unlock_frac: f64,
}

impl Default for BasicParams {
    /// Paper Table 2 values.
    fn default() -> Self {
        BasicParams {
            r_u: 7.8,
            r_tm_local: 8.0,
            r_tm_dist: 12.0,
            r_dm_read: 5.4,
            r_dm_update: 8.6,
            r_lr: 2.2,
            r_dmio_cpu_read: 1.5,
            r_dmio_cpu_update: 2.5,
            init_tm_msgs: 2.0,
            unlock_frac: 0.3,
        }
    }
}

impl BasicParams {
    /// `R_TM` for a chain type: distributed chains pay the network CPU.
    pub fn r_tm(&self, t: ChainType) -> f64 {
        if t.is_local() {
            self.r_tm_local
        } else {
            self.r_tm_dist
        }
    }

    /// `R_DM` per DM-phase visit.
    pub fn r_dm(&self, t: ChainType) -> f64 {
        if t.is_update() {
            self.r_dm_update
        } else {
            self.r_dm_read
        }
    }

    /// CPU part of a DMIO-phase visit.
    pub fn r_dmio_cpu(&self, t: ChainType) -> f64 {
        if t.is_update() {
            self.r_dmio_cpu_update
        } else {
            self.r_dmio_cpu_read
        }
    }

    /// Disk I/O operations per granule access: 1 read for a retrieval;
    /// read + journal write + in-place write for an update (paper §6:
    /// "three disk I/O operations ... are needed to update a database
    /// record").
    pub fn ios_per_granule(&self, t: ChainType) -> u32 {
        if t.is_update() {
            3
        } else {
            1
        }
    }

    /// Forced/synchronous log I/Os in the commit path (TCIO phase).
    ///
    /// Read-only chains skip the commit log write (nothing was changed);
    /// a local update forces one commit record; a distributed-update
    /// coordinator forces its commit record; a distributed-update slave
    /// writes a forced prepare record and then the commit record.
    pub fn commit_ios(&self, t: ChainType) -> u32 {
        match t {
            ChainType::Lro | ChainType::Droc | ChainType::Dros => 0,
            ChainType::Lu | ChainType::Duc => 1,
            ChainType::Dus => 2,
        }
    }

    /// CPU consumed in the TC (commit processing) phase.
    ///
    /// Local: the TEND/commit message at the single TM. Distributed:
    /// PREPARE plus COMMIT message rounds at both coordinator and slave.
    pub fn tc_cpu(&self, t: ChainType) -> f64 {
        match t {
            ChainType::Lro | ChainType::Lu => self.r_tm_local,
            _ => 2.0 * self.r_tm_dist,
        }
    }

    /// CPU consumed in the TA (abort processing) phase.
    pub fn ta_cpu(&self, t: ChainType) -> f64 {
        self.r_tm(t)
    }

    /// CPU of the INIT phase (TBEGIN + DBOPEN processing). Slave chains
    /// have no INIT phase (they are entered by the first REMDO).
    pub fn init_cpu(&self, t: ChainType) -> f64 {
        if t.is_slave() {
            0.0
        } else {
            self.init_tm_msgs * self.r_tm(t)
        }
    }

    /// CPU of the UL phase per lock released.
    pub fn ul_cpu_per_lock(&self) -> f64 {
        self.unlock_frac * self.r_lr
    }
}

/// Per-node parameters: the only hardware difference between the testbed
/// nodes was the database disk (Node A: DEC RM05; Node B: DEC RP06).
#[derive(Debug, Clone)]
pub struct NodeParams {
    /// Display name ("A", "B").
    pub name: String,
    /// Service time of one disk block transfer, ms (A: 28, B: 40 —
    /// Table 2's `R_DMIO^(disk)` read values; update values are exactly
    /// 3 × this).
    pub disk_io_ms: f64,
}

/// Full system parameterisation shared by model and simulator.
#[derive(Debug, Clone)]
pub struct SystemParams {
    /// CPU basic parameters (Table 2).
    pub basic: BasicParams,
    /// Participating nodes.
    pub nodes: Vec<NodeParams>,
    /// `N_g`: database granules (blocks) per site (3 000).
    pub n_granules: u32,
    /// `N_b`: records per granule (6).
    pub records_per_granule: u32,
    /// Records accessed by each request (4).
    pub records_per_request: u32,
    /// `R_UT`: user think time between transactions (0 in the experiments).
    pub think_time_ms: f64,
    /// α: one-way inter-site communication delay (≈ 0 in the experiments).
    pub comm_delay_ms: f64,
    /// Record-selection skew.
    pub access: AccessPattern,
}

impl Default for SystemParams {
    /// The paper's two-node testbed configuration (§2).
    fn default() -> Self {
        SystemParams {
            basic: BasicParams::default(),
            nodes: vec![
                NodeParams {
                    name: "A".into(),
                    disk_io_ms: 28.0,
                },
                NodeParams {
                    name: "B".into(),
                    disk_io_ms: 40.0,
                },
            ],
            n_granules: 3_000,
            records_per_granule: 6,
            records_per_request: 4,
            think_time_ms: 0.0,
            comm_delay_ms: 0.0,
            access: AccessPattern::Uniform,
        }
    }
}

impl SystemParams {
    /// A testbed scaled to `sites` nodes: the paper's two disk models
    /// (Node A's 28 ms RM05, Node B's 40 ms RP06) alternate across the
    /// sites with generated names, so `with_sites(2)` is exactly the
    /// default two-node configuration. The N-site scale-out scenarios use
    /// this to grow the topology without inventing new hardware.
    ///
    /// # Panics
    ///
    /// Panics if `sites == 0`.
    pub fn with_sites(sites: usize) -> Self {
        assert!(sites >= 1, "a system needs at least one site");
        let nodes = (0..sites)
            .map(|i| {
                let letter = (b'A' + (i % 26) as u8) as char;
                let name = if i < 26 {
                    letter.to_string()
                } else {
                    format!("{letter}{}", i / 26)
                };
                NodeParams {
                    name,
                    disk_io_ms: if i % 2 == 0 { 28.0 } else { 40.0 },
                }
            })
            .collect();
        SystemParams {
            nodes,
            ..SystemParams::default()
        }
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.nodes.len()
    }

    /// Records in one site's database file.
    pub fn records_per_site(&self) -> u64 {
        self.n_granules as u64 * self.records_per_granule as u64
    }

    /// Splits a distributed transaction's `n` requests into
    /// `(local, remote)` counts. Requests are spread as evenly as possible
    /// over all sites, home site first — for the two-node testbed this is
    /// the half/half split implied by the paper's symmetric DRO/DU
    /// throughputs (Table 5).
    pub fn split_requests(&self, n: u32) -> (u32, u32) {
        let sites = self.sites().max(1) as u32;
        let local = n.div_ceil(sites);
        (local, n - local)
    }

    /// `f(t, i, j)`: fraction of a distributed transaction's remote requests
    /// sent to each particular remote site (uniform over the other sites).
    pub fn remote_fraction(&self) -> f64 {
        let others = self.sites().saturating_sub(1);
        if others == 0 {
            0.0
        } else {
            1.0 / others as f64
        }
    }

    /// `R_DMIO^(disk)` per DMIO-phase visit for chain `t` at `node`
    /// (Table 2's 28/84 and 40/120 values).
    pub fn dmio_disk(&self, t: ChainType, node: usize) -> f64 {
        self.basic.ios_per_granule(t) as f64 * self.nodes[node].disk_io_ms
    }

    /// Effective granule count for the contention equations: skewed access
    /// behaves like a uniformly-accessed database shrunk by
    /// [`AccessPattern::contention_factor`].
    pub fn effective_granules(&self) -> f64 {
        self.n_granules as f64 / self.access.contention_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ChainType::*;

    #[test]
    fn table2_values_reproduced() {
        let p = SystemParams::default();
        // Node A rows of Table 2.
        assert_eq!(p.basic.r_u, 7.8);
        assert_eq!(p.basic.r_tm(Lro), 8.0);
        assert_eq!(p.basic.r_tm(Droc), 12.0);
        assert_eq!(p.basic.r_dm(Lro), 5.4);
        assert_eq!(p.basic.r_dm(Lu), 8.6);
        assert_eq!(p.basic.r_lr, 2.2);
        assert_eq!(p.basic.r_dmio_cpu(Droc), 1.5);
        assert_eq!(p.basic.r_dmio_cpu(Dus), 2.5);
        assert_eq!(p.dmio_disk(Lro, 0), 28.0);
        assert_eq!(p.dmio_disk(Lu, 0), 84.0);
        // Node B rows.
        assert_eq!(p.dmio_disk(Dros, 1), 40.0);
        assert_eq!(p.dmio_disk(Dus, 1), 120.0);
    }

    #[test]
    fn with_sites_alternates_the_testbed_disks() {
        let two = SystemParams::with_sites(2);
        assert_eq!(two.nodes[0].name, "A");
        assert_eq!(two.nodes[1].name, "B");
        assert_eq!(two.nodes[0].disk_io_ms, 28.0);
        assert_eq!(two.nodes[1].disk_io_ms, 40.0);

        let eight = SystemParams::with_sites(8);
        assert_eq!(eight.sites(), 8);
        for (i, node) in eight.nodes.iter().enumerate() {
            assert_eq!(node.disk_io_ms, if i % 2 == 0 { 28.0 } else { 40.0 });
        }
        assert_eq!(eight.nodes[2].name, "C");
        assert_eq!(eight.nodes[7].name, "H");
        // Names stay unique well past the alphabet.
        let many = SystemParams::with_sites(30);
        let names: std::collections::HashSet<&str> =
            many.nodes.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names.len(), 30);
    }

    #[test]
    fn database_geometry() {
        let p = SystemParams::default();
        assert_eq!(p.records_per_site(), 18_000);
        assert_eq!(p.sites(), 2);
    }

    #[test]
    fn request_split_two_nodes() {
        let p = SystemParams::default();
        for n in [4u32, 8, 12, 16, 20] {
            assert_eq!(p.split_requests(n), (n / 2, n / 2));
        }
        assert_eq!(p.split_requests(5), (3, 2));
        assert!((p.remote_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn commit_io_pattern() {
        let p = BasicParams::default();
        assert_eq!(p.commit_ios(Lro), 0);
        assert_eq!(p.commit_ios(Lu), 1);
        assert_eq!(p.commit_ios(Duc), 1);
        assert_eq!(p.commit_ios(Dus), 2);
        assert_eq!(p.commit_ios(Dros), 0);
    }

    #[test]
    fn contention_factor_limits() {
        assert_eq!(AccessPattern::Uniform.contention_factor(), 1.0);
        // p = h is uniform-equivalent.
        let f = AccessPattern::Hotspot {
            hot_data_frac: 0.2,
            hot_access_prob: 0.2,
        }
        .contention_factor();
        assert!((f - 1.0).abs() < 1e-12);
        // 80/20 rule: 0.64/0.2 + 0.04/0.8 = 3.25.
        let f = AccessPattern::Hotspot {
            hot_data_frac: 0.2,
            hot_access_prob: 0.8,
        }
        .contention_factor();
        assert!((f - 3.25).abs() < 1e-12);
        let p = SystemParams {
            access: AccessPattern::Hotspot {
                hot_data_frac: 0.2,
                hot_access_prob: 0.8,
            },
            ..SystemParams::default()
        };
        assert!((p.effective_granules() - 3000.0 / 3.25).abs() < 1e-9);
    }

    #[test]
    fn slave_has_no_init_or_user_phase_cost() {
        let p = BasicParams::default();
        assert_eq!(p.init_cpu(Dros), 0.0);
        assert!(p.init_cpu(Duc) > 0.0);
    }
}
