//! Standard workload specifications (paper §2).

use crate::types::{ChainType, TxType};

/// The four standard two-node workloads of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StandardWorkload {
    /// Local-only, eight users per node: 4 LRO + 4 LU.
    Lb8,
    /// Mixed, four users per node: 1 each of LRO, LU, DRO, DU.
    Mb4,
    /// Mixed, eight users per node: 2 each of LRO, LU, DRO, DU.
    Mb8,
    /// Local-intensive, six users per node: 2 LRO, 2 LU, 1 DRO, 1 DU.
    Ub6,
}

impl StandardWorkload {
    /// All four standard workloads.
    pub const ALL: [StandardWorkload; 4] = [
        StandardWorkload::Lb8,
        StandardWorkload::Mb4,
        StandardWorkload::Mb8,
        StandardWorkload::Ub6,
    ];

    /// Paper name.
    pub fn label(self) -> &'static str {
        match self {
            StandardWorkload::Lb8 => "LB8",
            StandardWorkload::Mb4 => "MB4",
            StandardWorkload::Mb8 => "MB8",
            StandardWorkload::Ub6 => "UB6",
        }
    }

    /// Instantiates the workload for `sites` nodes (the paper used 2).
    pub fn spec(self, sites: usize) -> WorkloadSpec {
        let per_node: Vec<(TxType, usize)> = match self {
            StandardWorkload::Lb8 => vec![(TxType::Lro, 4), (TxType::Lu, 4)],
            StandardWorkload::Mb4 => vec![
                (TxType::Lro, 1),
                (TxType::Lu, 1),
                (TxType::Dro, 1),
                (TxType::Du, 1),
            ],
            StandardWorkload::Mb8 => vec![
                (TxType::Lro, 2),
                (TxType::Lu, 2),
                (TxType::Dro, 2),
                (TxType::Du, 2),
            ],
            StandardWorkload::Ub6 => vec![
                (TxType::Lro, 2),
                (TxType::Lu, 2),
                (TxType::Dro, 1),
                (TxType::Du, 1),
            ],
        };
        WorkloadSpec {
            name: self.label().to_string(),
            users: vec![per_node; sites],
        }
    }
}

impl std::fmt::Display for StandardWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A workload: user populations per node.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Display name.
    pub name: String,
    /// `users[node]` lists `(type, count)` of user (TR) processes at that
    /// node. Each user submits transactions of its type sequentially.
    pub users: Vec<Vec<(TxType, usize)>>,
}

impl WorkloadSpec {
    /// Number of nodes.
    pub fn sites(&self) -> usize {
        self.users.len()
    }

    /// Users of `t` at `node`.
    pub fn user_count(&self, node: usize, t: TxType) -> usize {
        self.users[node]
            .iter()
            .filter(|&&(ty, _)| ty == t)
            .map(|&(_, c)| c)
            .sum()
    }

    /// Total users at `node`.
    pub fn users_at(&self, node: usize) -> usize {
        self.users[node].iter().map(|&(_, c)| c).sum()
    }

    /// `N(t, i)` of the model (paper §4.2): chain populations at `node`,
    /// including the slave chains induced by *other* nodes' distributed
    /// users. With uniform request spreading, every distributed transaction
    /// has one slave at each other site.
    pub fn chain_populations(&self, node: usize) -> Vec<(ChainType, usize)> {
        let mut pops: Vec<(ChainType, usize)> = Vec::new();
        let mut add = |c: ChainType, n: usize| {
            if n == 0 {
                return;
            }
            if let Some(e) = pops.iter_mut().find(|(ty, _)| *ty == c) {
                e.1 += n;
            } else {
                pops.push((c, n));
            }
        };
        for (i, node_users) in self.users.iter().enumerate() {
            for &(t, count) in node_users {
                if i == node {
                    add(t.coordinator_chain(), count);
                } else if let Some(slave) = t.slave_chain() {
                    add(slave, count);
                }
            }
        }
        pops.sort_by_key(|&(c, _)| ChainType::ALL.iter().position(|&x| x == c));
        pops
    }

    /// Population of one chain at `node`.
    pub fn population(&self, node: usize, chain: ChainType) -> usize {
        self.chain_populations(node)
            .into_iter()
            .find(|&(c, _)| c == chain)
            .map_or(0, |(_, n)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lb8_is_local_only() {
        let w = StandardWorkload::Lb8.spec(2);
        assert_eq!(w.users_at(0), 8);
        assert_eq!(w.users_at(1), 8);
        let pops = w.chain_populations(1);
        assert_eq!(
            pops,
            vec![(ChainType::Lro, 4), (ChainType::Lu, 4)],
            "no distributed chains in LB8"
        );
    }

    #[test]
    fn mb4_has_one_of_each_plus_slaves() {
        let w = StandardWorkload::Mb4.spec(2);
        let pops = w.chain_populations(0);
        assert_eq!(
            pops,
            vec![
                (ChainType::Lro, 1),
                (ChainType::Lu, 1),
                (ChainType::Droc, 1),
                (ChainType::Duc, 1),
                (ChainType::Dros, 1),
                (ChainType::Dus, 1),
            ]
        );
        // 4 users + 2 foreign slaves = 6 chains, but only 4 users:
        assert_eq!(w.users_at(0), 4);
    }

    #[test]
    fn mb8_doubles_mb4() {
        let w = StandardWorkload::Mb8.spec(2);
        for (c, n) in w.chain_populations(0) {
            assert_eq!(n, 2, "{c}");
        }
    }

    #[test]
    fn ub6_is_local_intensive() {
        let w = StandardWorkload::Ub6.spec(2);
        assert_eq!(w.population(0, ChainType::Lro), 2);
        assert_eq!(w.population(0, ChainType::Duc), 1);
        assert_eq!(w.population(0, ChainType::Dus), 1);
        assert_eq!(w.users_at(0), 6);
    }

    #[test]
    fn three_site_slaves_multiply() {
        // Generalisation beyond the paper: with 3 sites each DU user puts
        // one slave at each of the 2 other sites.
        let w = StandardWorkload::Mb4.spec(3);
        assert_eq!(w.population(0, ChainType::Dus), 2);
        assert_eq!(w.population(0, ChainType::Dros), 2);
    }

    #[test]
    fn user_count_accessor() {
        let w = StandardWorkload::Ub6.spec(2);
        assert_eq!(w.user_count(0, TxType::Lro), 2);
        assert_eq!(w.user_count(0, TxType::Du), 1);
        assert_eq!(w.user_count(1, TxType::Dro), 1);
    }
}
