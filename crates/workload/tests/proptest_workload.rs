//! Property-based tests for workload specifications and parameters.

use carat_workload::{
    AccessPattern, ChainType, StandardWorkload, SystemParams, TxType, WorkloadSpec,
};
use proptest::prelude::*;

fn arbitrary_spec() -> impl Strategy<Value = WorkloadSpec> {
    proptest::collection::vec(
        (0usize..4, 0usize..4, 0usize..4, 0usize..4),
        2..5, // nodes
    )
    .prop_map(|nodes| WorkloadSpec {
        name: "random".into(),
        users: nodes
            .into_iter()
            .map(|(lro, lu, dro, du)| {
                vec![
                    (TxType::Lro, lro),
                    (TxType::Lu, lu),
                    (TxType::Dro, dro),
                    (TxType::Du, du),
                ]
            })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Chain-population bookkeeping: at every node the local chains equal
    /// that node's users, and the slave chains equal the *other* nodes'
    /// distributed users.
    #[test]
    fn chain_populations_conserve_users(spec in arbitrary_spec()) {
        let sites = spec.sites();
        for node in 0..sites {
            prop_assert_eq!(
                spec.population(node, ChainType::Lro),
                spec.user_count(node, TxType::Lro)
            );
            prop_assert_eq!(
                spec.population(node, ChainType::Droc),
                spec.user_count(node, TxType::Dro)
            );
            let foreign_dro: usize = (0..sites)
                .filter(|&j| j != node)
                .map(|j| spec.user_count(j, TxType::Dro))
                .sum();
            prop_assert_eq!(spec.population(node, ChainType::Dros), foreign_dro);
            let foreign_du: usize = (0..sites)
                .filter(|&j| j != node)
                .map(|j| spec.user_count(j, TxType::Du))
                .sum();
            prop_assert_eq!(spec.population(node, ChainType::Dus), foreign_du);
        }
        // Global conservation: total coordinator chains == total users.
        let total_users: usize = (0..sites).map(|n| spec.users_at(n)).sum();
        let total_coord: usize = (0..sites)
            .flat_map(|n| spec.chain_populations(n))
            .filter(|(c, _)| !c.is_slave())
            .map(|(_, n)| n)
            .sum();
        prop_assert_eq!(total_coord, total_users);
    }

    /// Request splitting conserves requests and spreads remotes evenly.
    #[test]
    fn request_split_conserves(n in 1u32..100, extra_sites in 0usize..5) {
        let mut p = SystemParams::default();
        for i in 0..extra_sites {
            p.nodes.push(carat_workload::NodeParams {
                name: format!("X{i}"),
                disk_io_ms: 30.0,
            });
        }
        let (l, r) = p.split_requests(n);
        prop_assert_eq!(l + r, n);
        prop_assert!(l >= 1);
        // Even spreading: home gets the ceiling share.
        prop_assert_eq!(l, n.div_ceil(p.sites() as u32));
    }

    /// The hotspot contention factor is ≥ 1, continuous at the uniform
    /// point, and increases with skew concentration.
    #[test]
    fn contention_factor_properties(h in 0.01f64..0.99, p_extra in 0.0f64..0.5) {
        let p_hot = (h + p_extra * (1.0 - h)).min(0.99);
        let f = AccessPattern::Hotspot {
            hot_data_frac: h,
            hot_access_prob: p_hot,
        }
        .contention_factor();
        prop_assert!(f >= 1.0 - 1e-12, "factor {f} < 1");
        // More concentrated access (same data fraction, higher access
        // probability) never reduces contention.
        if p_hot > h {
            let less = AccessPattern::Hotspot {
                hot_data_frac: h,
                hot_access_prob: (h + p_hot) / 2.0,
            }
            .contention_factor();
            prop_assert!(f >= less - 1e-12);
        }
    }
}

#[test]
fn standard_workloads_match_paper_populations() {
    // Straight from paper §2.
    let lb8 = StandardWorkload::Lb8.spec(2);
    assert_eq!(lb8.users_at(0), 8);
    assert_eq!(lb8.user_count(0, TxType::Lro), 4);
    let ub6 = StandardWorkload::Ub6.spec(2);
    assert_eq!(ub6.users_at(1), 6);
    assert_eq!(ub6.user_count(1, TxType::Du), 1);
}
