//! # carat-storage — block-structured storage engine with before-image WAL
//!
//! A functional reimplementation of the storage substrate beneath CARAT's
//! DM servers (the paper's "simple CODASYL database system", §2):
//!
//! * fixed-size **512-byte disk blocks** holding **6 database records**
//!   each — the block is the unit of I/O transfer, locking, and logging,
//!   exactly as in the testbed;
//! * a **before-image journal** \[GRAY79-style physical logging\]: the first
//!   time a transaction dirties a block, the block's before-image is
//!   appended to the journal *before* the in-place update (write-ahead
//!   rule), enabling rollback and crash recovery;
//! * **transaction rollback** — restoring before-images in reverse order;
//! * **crash recovery** — a journal scan that undoes every transaction
//!   without a commit record (presumed abort), idempotently;
//! * **two-phase-commit hooks** — `prepare` writes a forced prepare record
//!   so a slave site can survive a crash between PREPARE and COMMIT.
//!
//! The engine is deliberately buffer-less: "a shared database buffer is not
//! used to reduce database I/O" is one of the paper's explicit modelling
//! assumptions, so every granule access is an I/O. The [`IoCounts`]
//! accounting lets the simulator charge simulated disk time for exactly the
//! I/O pattern the paper costs out (1 read for a retrieval; read + journal
//! write + in-place write for an update; forced log writes at commit).
//!
//! Journal records are serialised to bytes with a CRC-32 per record, and
//! recovery re-parses the byte stream — torn or corrupt tails are detected
//! and cleanly ignored, as a real log manager must.

pub mod block;
pub mod db;
pub mod journal;
pub mod store;

pub use block::{Block, RecordId, BLOCK_SIZE, RECORDS_PER_BLOCK, RECORD_SIZE};
pub use db::{Database, DbError, IoCounts, TxId};
pub use journal::{Journal, LogPayload, LogRecord};
pub use store::PageStore;
