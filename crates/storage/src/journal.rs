//! The recovery journal: before-image physical logging.
//!
//! CARAT used "before-image journaling ... for transaction recovery"
//! (paper §2). The journal is an append-only byte log; each record is
//! framed as
//!
//! ```text
//! ┌───────┬──────┬───────────────┬─────────┐
//! │ magic │ len  │ payload bytes │ crc32   │
//! │ u16   │ u32  │ len bytes     │ u32     │
//! └───────┴──────┴───────────────┴─────────┘
//! ```
//!
//! and recovery re-parses the byte stream from the start. A torn tail
//! (partial frame or CRC mismatch) terminates the scan cleanly — exactly
//! the contract a force-write log gives a real system: everything before
//! the last successfully forced frame is trustworthy.

use crate::block::{Block, BLOCK_SIZE};

/// Transaction identifier as recorded in the journal.
pub type JournalTxId = u64;

const MAGIC: u16 = 0xCA7A;

/// The body of a journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogPayload {
    /// Physical before-image of `block_id`, taken before the first update
    /// by `tx` (write-ahead rule).
    BeforeImage {
        /// Block whose pre-state is saved.
        block_id: u32,
        /// The 512 pre-update bytes.
        image: Box<Block>,
    },
    /// The transaction entered the prepared state (2PC participant).
    Prepare,
    /// The transaction committed (force-written by the coordinator/TM).
    Commit,
    /// The transaction was rolled back.
    Abort,
}

/// One framed journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Owning transaction.
    pub tx: JournalTxId,
    /// What happened.
    pub payload: LogPayload,
}

impl LogRecord {
    fn encode_body(&self, body: &mut Vec<u8>) {
        body.extend_from_slice(&self.tx.to_le_bytes());
        match &self.payload {
            LogPayload::BeforeImage { block_id, image } => {
                body.push(0);
                body.extend_from_slice(&block_id.to_le_bytes());
                body.extend_from_slice(image.bytes().as_slice());
            }
            LogPayload::Prepare => body.push(1),
            LogPayload::Commit => body.push(2),
            LogPayload::Abort => body.push(3),
        }
    }

    /// Decodes one frame starting at `buf[offset..]`. Returns the record and
    /// the offset one past its end, or `None` on a torn / corrupt frame.
    fn decode(buf: &[u8], offset: usize) -> Option<(LogRecord, usize)> {
        let hdr = buf.get(offset..offset + 6)?;
        if u16::from_le_bytes([hdr[0], hdr[1]]) != MAGIC {
            return None;
        }
        let len = u32::from_le_bytes([hdr[2], hdr[3], hdr[4], hdr[5]]) as usize;
        let body = buf.get(offset + 6..offset + 6 + len)?;
        let crc_bytes = buf.get(offset + 6 + len..offset + 10 + len)?;
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().ok()?);
        if crc32(body) != stored_crc {
            return None;
        }
        if body.len() < 9 {
            return None;
        }
        let tx = u64::from_le_bytes(body[0..8].try_into().ok()?);
        let payload = match body[8] {
            0 => {
                let rest = &body[9..];
                if rest.len() != 4 + BLOCK_SIZE {
                    return None;
                }
                let block_id = u32::from_le_bytes(rest[0..4].try_into().ok()?);
                LogPayload::BeforeImage {
                    block_id,
                    image: Box::new(Block::from_bytes(&rest[4..])),
                }
            }
            1 => LogPayload::Prepare,
            2 => LogPayload::Commit,
            3 => LogPayload::Abort,
            _ => return None,
        };
        Some((LogRecord { tx, payload }, offset + 10 + len))
    }
}

/// An append-only journal.
///
/// Writes are buffered; [`Journal::force`] models the synchronous
/// force-write the TM server performs for commit/prepare records (the
/// simulator charges a disk I/O for each force). Recovery reads only forced
/// bytes — un-forced appends are lost in a crash, which is precisely the
/// write-ahead contract.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    bytes: Vec<u8>,
    forced_len: usize,
    appends: u64,
    forces: u64,
    /// Reused frame-body buffer, so appends allocate nothing once warm.
    body_scratch: Vec<u8>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Frames `body_scratch` (already filled) into the log.
    fn frame_body(&mut self) {
        self.bytes.extend_from_slice(&MAGIC.to_le_bytes());
        self.bytes
            .extend_from_slice(&(self.body_scratch.len() as u32).to_le_bytes());
        let crc = crc32(&self.body_scratch);
        self.bytes.extend_from_slice(&self.body_scratch);
        self.bytes.extend_from_slice(&crc.to_le_bytes());
        self.appends += 1;
    }

    /// Appends a record to the journal buffer (not yet durable).
    pub fn append(&mut self, rec: &LogRecord) {
        let mut body = std::mem::take(&mut self.body_scratch);
        body.clear();
        rec.encode_body(&mut body);
        self.body_scratch = body;
        self.frame_body();
    }

    /// Appends a before-image record encoded directly from a borrowed
    /// block — the hot path of `Database::update_record`, which would
    /// otherwise clone the block just to build a [`LogRecord`].
    pub fn append_before_image(&mut self, tx: JournalTxId, block_id: u32, image: &Block) {
        let mut body = std::mem::take(&mut self.body_scratch);
        body.clear();
        body.extend_from_slice(&tx.to_le_bytes());
        body.push(0);
        body.extend_from_slice(&block_id.to_le_bytes());
        body.extend_from_slice(image.bytes().as_slice());
        self.body_scratch = body;
        self.frame_body();
    }

    /// Forces the journal: everything appended so far becomes durable.
    pub fn force(&mut self) {
        self.forced_len = self.bytes.len();
        self.forces += 1;
    }

    /// Appends and immediately forces (commit / prepare records).
    pub fn append_forced(&mut self, rec: &LogRecord) {
        self.append(rec);
        self.force();
    }

    /// Number of appended records.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Number of force operations (synchronous log I/Os).
    pub fn forces(&self) -> u64 {
        self.forces
    }

    /// Total journal size in bytes (including un-forced tail).
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Simulates a crash: the un-forced tail is lost.
    pub fn crash(&mut self) {
        self.bytes.truncate(self.forced_len);
    }

    /// Deliberately corrupts the byte at `pos` (test hook for torn-write
    /// handling).
    pub fn corrupt_byte(&mut self, pos: usize) {
        if let Some(b) = self.bytes.get_mut(pos) {
            *b ^= 0xFF;
        }
    }

    /// Replays the journal from the beginning, yielding every intact record
    /// in append order. Stops at the first torn or corrupt frame.
    pub fn scan(&self) -> Vec<LogRecord> {
        let mut out = Vec::new();
        let mut off = 0;
        while let Some((rec, next)) = LogRecord::decode(&self.bytes, off) {
            out.push(rec);
            off = next;
        }
        out
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    // Build the table at compile time.
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn before_image(tx: u64, block_id: u32, fill: u8) -> LogRecord {
        let mut img = Block::zeroed();
        img.bytes_mut().fill(fill);
        LogRecord {
            tx,
            payload: LogPayload::BeforeImage {
                block_id,
                image: Box::new(img),
            },
        }
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32 of "123456789" is 0xCBF43926 (IEEE check value).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_roundtrip_all_kinds() {
        let mut j = Journal::new();
        let records = vec![
            before_image(7, 42, 0xAB),
            LogRecord {
                tx: 7,
                payload: LogPayload::Prepare,
            },
            LogRecord {
                tx: 7,
                payload: LogPayload::Commit,
            },
            LogRecord {
                tx: 8,
                payload: LogPayload::Abort,
            },
        ];
        for r in &records {
            j.append(r);
        }
        j.force();
        assert_eq!(j.scan(), records);
        assert_eq!(j.appends(), 4);
        assert_eq!(j.forces(), 1);
    }

    #[test]
    fn crash_loses_unforced_tail() {
        let mut j = Journal::new();
        j.append_forced(&before_image(1, 0, 1));
        j.append(&before_image(2, 1, 2)); // never forced
        j.crash();
        let recs = j.scan();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].tx, 1);
    }

    #[test]
    fn corrupt_frame_stops_scan_cleanly() {
        let mut j = Journal::new();
        j.append_forced(&before_image(1, 0, 1));
        let first_end = j.len_bytes();
        j.append_forced(&before_image(2, 1, 2));
        j.append_forced(&before_image(3, 2, 3));
        // Corrupt a byte inside the second frame's body.
        j.corrupt_byte(first_end + 20);
        let recs = j.scan();
        assert_eq!(recs.len(), 1, "scan must stop at the corrupt frame");
    }

    #[test]
    fn scan_of_empty_journal_is_empty() {
        assert!(Journal::new().scan().is_empty());
    }

    #[test]
    fn torn_header_is_ignored() {
        let mut j = Journal::new();
        j.append_forced(&LogRecord {
            tx: 9,
            payload: LogPayload::Commit,
        });
        // Simulate a torn append: half a header.
        j.bytes.extend_from_slice(&MAGIC.to_le_bytes());
        j.bytes.push(0xFF);
        assert_eq!(j.scan().len(), 1);
    }
}
