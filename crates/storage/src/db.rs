//! The transactional database: page store + journal + rollback + recovery.

use std::collections::HashSet;

use carat_des::{FastMap, FastSet};

use crate::block::{Block, RecordId};
use crate::journal::{Journal, LogPayload, LogRecord};
use crate::store::PageStore;

/// Transaction identifier.
pub type TxId = u64;

/// I/O performed by one storage operation, so the simulator can charge
/// simulated disk time for exactly the paper's I/O pattern (§6, Table 2
/// discussion: one read per retrieved record's granule; read + journal
/// write + database write per updated granule; forced log writes at
/// commit/prepare).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoCounts {
    /// Database file block reads.
    pub db_reads: u32,
    /// Database file block writes.
    pub db_writes: u32,
    /// Journal appends that reached the log buffer (asynchronous).
    pub journal_writes: u32,
    /// Synchronous (forced) journal writes.
    pub forced_writes: u32,
}

impl IoCounts {
    /// Total disk operations; in the testbed the journal shared the database
    /// disk (paper §2), so every category costs a disk visit.
    pub fn total(&self) -> u32 {
        self.db_reads + self.db_writes + self.journal_writes + self.forced_writes
    }
}

impl std::ops::Add for IoCounts {
    type Output = IoCounts;
    fn add(self, rhs: IoCounts) -> IoCounts {
        IoCounts {
            db_reads: self.db_reads + rhs.db_reads,
            db_writes: self.db_writes + rhs.db_writes,
            journal_writes: self.journal_writes + rhs.journal_writes,
            forced_writes: self.forced_writes + rhs.forced_writes,
        }
    }
}

impl std::ops::AddAssign for IoCounts {
    fn add_assign(&mut self, rhs: IoCounts) {
        *self = *self + rhs;
    }
}

/// Storage-level errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbError {
    /// Operation on a transaction that was never begun (or already ended).
    UnknownTx(TxId),
    /// `begin` on an id that is already active.
    TxAlreadyActive(TxId),
    /// Record address outside the database file.
    BadAddress(RecordId),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::UnknownTx(t) => write!(f, "unknown transaction {t}"),
            DbError::TxAlreadyActive(t) => write!(f, "transaction {t} already active"),
            DbError::BadAddress(r) => write!(f, "bad record address {r:?}"),
        }
    }
}

impl std::error::Error for DbError {}

#[derive(Debug, Default)]
struct TxState {
    /// Blocks this transaction has journaled (write-ahead done once per
    /// block per transaction).
    journaled: FastSet<u32>,
    /// Before-images in journaling order, for in-memory rollback.
    undo: Vec<(u32, Block)>,
    /// Entered the 2PC prepared state (prepare record forced); such a
    /// participant is *in doubt* until the coordinator's decision arrives.
    prepared: bool,
}

/// A single site's transactional storage engine.
///
/// ```
/// use carat_storage::{Database, RecordId};
/// let mut db = Database::new(100);
/// db.begin(1).unwrap();
/// let rid = RecordId { block: 5, slot: 2 };
/// db.update_record(1, rid, b"new value").unwrap();
/// db.commit(1).unwrap();
/// assert_eq!(&db.read_committed(rid)[..9], b"new value");
/// ```
#[derive(Debug)]
pub struct Database {
    store: PageStore,
    journal: Journal,
    active: FastMap<TxId, TxState>,
    /// Retired [`TxState`]s, recycled across transactions so `begin` does
    /// not re-allocate the journaled-set / undo-list capacity every time.
    spare_states: Vec<TxState>,
}

impl Database {
    /// Creates a database of `n_blocks` zero-filled blocks.
    pub fn new(n_blocks: u32) -> Self {
        Database {
            store: PageStore::new(n_blocks),
            journal: Journal::new(),
            active: FastMap::default(),
            spare_states: Vec::new(),
        }
    }

    /// Fills every record with a deterministic tag of its own address
    /// (handy for integrity checks after recovery).
    pub fn load_default(&mut self) {
        use std::fmt::Write as _;
        let mut tag = String::with_capacity(24);
        for b in 0..self.store.n_blocks() {
            let blk = self.store.modify(b);
            for s in 0..crate::block::RECORDS_PER_BLOCK as u8 {
                let flat = RecordId { block: b, slot: s }.to_flat();
                tag.clear();
                write!(tag, "rec{flat}").expect("write to String");
                blk.set_record(s, tag.as_bytes());
            }
        }
        self.store.reset_io();
    }

    /// Number of blocks in the database file.
    pub fn n_blocks(&self) -> u32 {
        self.store.n_blocks()
    }

    /// Starts a transaction.
    pub fn begin(&mut self, tx: TxId) -> Result<(), DbError> {
        if self.active.contains_key(&tx) {
            return Err(DbError::TxAlreadyActive(tx));
        }
        let state = self.spare_states.pop().unwrap_or_default();
        debug_assert!(state.journaled.is_empty() && state.undo.is_empty() && !state.prepared);
        self.active.insert(tx, state);
        Ok(())
    }

    /// Returns a finished transaction's state to the recycling pool.
    fn retire_state(&mut self, mut state: TxState) {
        state.journaled.clear();
        state.undo.clear();
        state.prepared = false;
        self.spare_states.push(state);
    }

    /// True if `tx` is active.
    pub fn is_active(&self, tx: TxId) -> bool {
        self.active.contains_key(&tx)
    }

    fn check_addr(&self, rid: RecordId) -> Result<(), DbError> {
        if rid.block >= self.store.n_blocks()
            || rid.slot as usize >= crate::block::RECORDS_PER_BLOCK
        {
            Err(DbError::BadAddress(rid))
        } else {
            Ok(())
        }
    }

    /// Reads one record on behalf of `tx`. Costs one database read
    /// (buffer-less engine — paper assumption §3).
    pub fn read_record(&mut self, tx: TxId, rid: RecordId) -> Result<(Vec<u8>, IoCounts), DbError> {
        let io = self.touch_record(tx, rid)?;
        Ok((self.store.peek(rid.block).record(rid.slot).to_vec(), io))
    }

    /// [`read_record`](Self::read_record) without materialising the payload:
    /// the same access check and the same one-read I/O charge, no copies.
    /// The simulator's read path uses this — it charges disk time for the
    /// access but never looks at the bytes.
    pub fn touch_record(&mut self, tx: TxId, rid: RecordId) -> Result<IoCounts, DbError> {
        if !self.active.contains_key(&tx) {
            return Err(DbError::UnknownTx(tx));
        }
        self.check_addr(rid)?;
        let _ = self.store.read_ref(rid.block);
        Ok(IoCounts {
            db_reads: 1,
            ..IoCounts::default()
        })
    }

    /// Updates one record on behalf of `tx`: reads the block, journals its
    /// before-image on first touch (write-ahead rule), writes the block
    /// back in place.
    pub fn update_record(
        &mut self,
        tx: TxId,
        rid: RecordId,
        payload: &[u8],
    ) -> Result<IoCounts, DbError> {
        self.check_addr(rid)?;
        let state = self.active.get_mut(&tx).ok_or(DbError::UnknownTx(tx))?;
        let mut io = IoCounts::default();

        if state.journaled.insert(rid.block) {
            let image = self.store.peek(rid.block);
            self.journal.append_before_image(tx, rid.block, image);
            // Write-ahead rule: the before-image must be durable *before*
            // the in-place data write below, or a crash could leave an
            // uncommitted page image that recovery cannot undo. This force
            // is not an extra device operation — it IS the journal write
            // the paper counts as one of the three update I/Os (the
            // `journal_writes` charge); only its durability is made
            // explicit here.
            state.undo.push((rid.block, image.clone()));
            self.journal.force();
            io.journal_writes += 1;
        }

        // One read + one write I/O, mutating the block in place (the copy
        // the old read-modify-write pair made served no purpose).
        let block = self.store.modify(rid.block);
        block.set_record(rid.slot, payload);
        io.db_reads += 1;
        io.db_writes += 1;
        Ok(io)
    }

    /// Commits `tx`: force-writes a commit record and forgets the undo set.
    pub fn commit(&mut self, tx: TxId) -> Result<IoCounts, DbError> {
        let state = self.active.remove(&tx).ok_or(DbError::UnknownTx(tx))?;
        self.retire_state(state);
        self.journal.append_forced(&LogRecord {
            tx,
            payload: LogPayload::Commit,
        });
        Ok(IoCounts {
            forced_writes: 1,
            ..IoCounts::default()
        })
    }

    /// Enters the prepared state for `tx` (2PC participant): forces the
    /// journal so every before-image plus the prepare record is durable.
    pub fn prepare(&mut self, tx: TxId) -> Result<IoCounts, DbError> {
        let state = self.active.get_mut(&tx).ok_or(DbError::UnknownTx(tx))?;
        state.prepared = true;
        self.journal.append_forced(&LogRecord {
            tx,
            payload: LogPayload::Prepare,
        });
        Ok(IoCounts {
            forced_writes: 1,
            ..IoCounts::default()
        })
    }

    /// True if `tx` is active and has entered the prepared state.
    pub fn is_prepared(&self, tx: TxId) -> bool {
        self.active.get(&tx).map(|s| s.prepared).unwrap_or(false)
    }

    /// Active transactions in the in-doubt window: prepared (vote YES
    /// durable) but neither committed nor rolled back yet. These hold their
    /// locks until the coordinator's decision — or a termination protocol —
    /// resolves them.
    pub fn in_doubt(&self) -> Vec<TxId> {
        let mut v: Vec<TxId> = self
            .active
            .iter()
            .filter(|(_, s)| s.prepared)
            .map(|(&tx, _)| tx)
            .collect();
        v.sort_unstable();
        v
    }

    /// Rolls `tx` back: restores before-images in reverse order and writes
    /// an abort record. Each restored block costs one database write.
    ///
    /// The abort record is **forced** whenever the transaction had journaled
    /// before-images: if it were buffered, a crash could lose the abort
    /// record while the (previously forced) before-images survive —
    /// recovery would then re-undo the transaction and clobber any later
    /// committed writes to the same blocks. (Found by the recovery property
    /// test; the same reasoning is why ARIES writes CLRs.)
    pub fn rollback(&mut self, tx: TxId) -> Result<IoCounts, DbError> {
        let mut state = self.active.remove(&tx).ok_or(DbError::UnknownTx(tx))?;
        let mut io = IoCounts::default();
        let had_images = !state.undo.is_empty();
        for (block_id, image) in state.undo.drain(..).rev() {
            self.store.write(block_id, image);
            io.db_writes += 1;
        }
        self.retire_state(state);
        let rec = LogRecord {
            tx,
            payload: LogPayload::Abort,
        };
        if had_images {
            self.journal.append_forced(&rec);
            io.forced_writes += 1;
        } else {
            self.journal.append(&rec);
            io.journal_writes += 1;
        }
        Ok(io)
    }

    /// Reads a record outside any transaction (verification only; does not
    /// count I/O).
    pub fn read_committed(&self, rid: RecordId) -> Vec<u8> {
        self.store.peek(rid.block).record(rid.slot).to_vec()
    }

    /// Simulates a crash (volatile state lost, un-forced journal tail lost)
    /// followed by restart recovery.
    ///
    /// Recovery scans the journal; any transaction with a before-image but
    /// no commit record is undone by restoring its before-images in reverse
    /// log order (presumed abort). Prepared-but-uncommitted transactions are
    /// also undone here — in the full 2PC protocol the simulator would ask
    /// the coordinator first, but for a storage-level restart presumed
    /// abort is the correct default. Returns the set of undone transactions.
    pub fn crash_and_recover(&mut self) -> Vec<TxId> {
        self.active.clear();
        self.journal.crash();
        let records = self.journal.scan();

        let committed: HashSet<TxId> = records
            .iter()
            .filter(|r| matches!(r.payload, LogPayload::Commit))
            .map(|r| r.tx)
            .collect();
        let aborted: HashSet<TxId> = records
            .iter()
            .filter(|r| matches!(r.payload, LogPayload::Abort))
            .map(|r| r.tx)
            .collect();

        let mut undone = Vec::new();
        // Restore in reverse log order so that if several transactions
        // touched the same block (impossible under 2PL for uncommitted
        // writers, but recovery must not rely on that), the oldest image
        // wins.
        for rec in records.iter().rev() {
            if let LogPayload::BeforeImage { block_id, image } = &rec.payload {
                if !committed.contains(&rec.tx) && !aborted.contains(&rec.tx) {
                    self.store.write(*block_id, (**image).clone());
                    if !undone.contains(&rec.tx) {
                        undone.push(rec.tx);
                    }
                }
            }
        }
        for &tx in &undone {
            self.journal.append(&LogRecord {
                tx,
                payload: LogPayload::Abort,
            });
        }
        self.journal.force();
        undone
    }

    /// Journal statistics (appends, forces).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Page-store I/O statistics.
    pub fn store(&self) -> &PageStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(block: u32, slot: u8) -> RecordId {
        RecordId { block, slot }
    }

    #[test]
    fn committed_update_is_durable() {
        let mut db = Database::new(10);
        db.begin(1).unwrap();
        let io = db.update_record(1, rid(2, 3), b"v1").unwrap();
        assert_eq!(io.db_reads, 1);
        assert_eq!(io.db_writes, 1);
        assert_eq!(io.journal_writes, 1);
        let io = db.commit(1).unwrap();
        assert_eq!(io.forced_writes, 1);
        assert_eq!(&db.read_committed(rid(2, 3))[..2], b"v1");
    }

    #[test]
    fn second_update_of_same_block_skips_journal() {
        let mut db = Database::new(10);
        db.begin(1).unwrap();
        db.update_record(1, rid(2, 0), b"a").unwrap();
        let io = db.update_record(1, rid(2, 1), b"b").unwrap();
        assert_eq!(io.journal_writes, 0, "before-image taken once per block");
        db.commit(1).unwrap();
    }

    #[test]
    fn rollback_restores_before_images() {
        let mut db = Database::new(10);
        db.load_default();
        let original = db.read_committed(rid(4, 4));
        db.begin(9).unwrap();
        db.update_record(9, rid(4, 4), b"scribble").unwrap();
        db.update_record(9, rid(5, 0), b"more").unwrap();
        let io = db.rollback(9).unwrap();
        assert_eq!(io.db_writes, 2);
        assert_eq!(db.read_committed(rid(4, 4)), original);
        assert!(!db.is_active(9));
    }

    #[test]
    fn crash_undoes_uncommitted_only() {
        let mut db = Database::new(10);
        db.load_default();
        let orig_b7 = db.read_committed(rid(7, 0));

        db.begin(1).unwrap();
        db.update_record(1, rid(3, 0), b"committed-data").unwrap();
        db.commit(1).unwrap();

        db.begin(2).unwrap();
        db.update_record(2, rid(7, 0), b"doomed").unwrap();
        // Force the journal so the before-image survives the crash; in
        // CARAT the journal shares the database disk and before-images are
        // written out with the data block.
        db.prepare(2).unwrap();

        let undone = db.crash_and_recover();
        assert_eq!(undone, vec![2]);
        assert_eq!(&db.read_committed(rid(3, 0))[..14], b"committed-data");
        assert_eq!(db.read_committed(rid(7, 0)), orig_b7);
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut db = Database::new(10);
        db.load_default();
        db.begin(2).unwrap();
        db.update_record(2, rid(7, 0), b"doomed").unwrap();
        db.prepare(2).unwrap();
        let first = db.crash_and_recover();
        assert_eq!(first, vec![2]);
        let second = db.crash_and_recover();
        assert!(second.is_empty(), "second recovery finds nothing to undo");
    }

    #[test]
    fn unforced_updates_may_survive_crash_but_are_undone() {
        // The engine writes data blocks in place immediately; if the
        // before-image frame was forced, recovery undoes the update even
        // though the transaction never prepared.
        let mut db = Database::new(4);
        db.load_default();
        let orig = db.read_committed(rid(1, 1));
        db.begin(5).unwrap();
        db.update_record(5, rid(1, 1), b"phantom").unwrap();
        // Another transaction's forced commit forces tx 5's image too
        // (shared journal).
        db.begin(6).unwrap();
        db.update_record(6, rid(2, 0), b"x").unwrap();
        db.commit(6).unwrap();
        let undone = db.crash_and_recover();
        assert_eq!(undone, vec![5]);
        assert_eq!(db.read_committed(rid(1, 1)), orig);
    }

    #[test]
    fn errors_are_reported() {
        let mut db = Database::new(2);
        assert_eq!(db.commit(1), Err(DbError::UnknownTx(1)));
        db.begin(1).unwrap();
        assert_eq!(db.begin(1), Err(DbError::TxAlreadyActive(1)));
        assert_eq!(
            db.update_record(1, rid(2, 0), b"x"),
            Err(DbError::BadAddress(rid(2, 0)))
        );
        assert_eq!(
            db.read_record(1, rid(0, 6)).unwrap_err(),
            DbError::BadAddress(rid(0, 6))
        );
    }

    #[test]
    fn io_counts_add() {
        let a = IoCounts {
            db_reads: 1,
            db_writes: 2,
            journal_writes: 3,
            forced_writes: 4,
        };
        let b = a + a;
        assert_eq!(b.total(), 20);
        let mut c = a;
        c += a;
        assert_eq!(c, b);
    }
}
