//! The page store: a site's database "disk".
//!
//! An array of [`Block`]s addressed by block number, with read/write I/O
//! counting. In the testbed this was a DEC RM05 (Node A) or RP06 (Node B)
//! volume of 3 000 blocks; timing is supplied by the simulator, the store
//! only performs the data movement and the accounting.

use crate::block::{Block, BLOCK_SIZE};

/// A volume of fixed-size blocks.
#[derive(Debug, Clone)]
pub struct PageStore {
    blocks: Vec<Block>,
    reads: u64,
    writes: u64,
}

impl PageStore {
    /// Creates a zero-filled volume of `n_blocks` blocks.
    pub fn new(n_blocks: u32) -> Self {
        PageStore {
            blocks: vec![Block::zeroed(); n_blocks as usize],
            reads: 0,
            writes: 0,
        }
    }

    /// Number of blocks in the volume.
    pub fn n_blocks(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// Reads block `id` ("transfers it from disk"): returns a copy, counts
    /// one read I/O.
    pub fn read(&mut self, id: u32) -> Block {
        self.reads += 1;
        self.blocks[id as usize].clone()
    }

    /// Reads block `id` without copying it: counts one read I/O, returns a
    /// reference into the volume. The transaction path uses this when it
    /// only needs to look at the block, not keep it.
    pub fn read_ref(&mut self, id: u32) -> &Block {
        self.reads += 1;
        &self.blocks[id as usize]
    }

    /// Read-modify-write of block `id` in place: counts one read and one
    /// write I/O (the same charge as a [`read`](Self::read) followed by a
    /// [`write`](Self::write)) without copying the block out and back.
    pub fn modify(&mut self, id: u32) -> &mut Block {
        self.reads += 1;
        self.writes += 1;
        &mut self.blocks[id as usize]
    }

    /// Peeks at block `id` without counting an I/O (used by assertions and
    /// tests, never by the transaction path).
    pub fn peek(&self, id: u32) -> &Block {
        &self.blocks[id as usize]
    }

    /// Writes block `id` in place, counting one write I/O.
    pub fn write(&mut self, id: u32, block: Block) {
        assert_eq!(block.bytes().len(), BLOCK_SIZE);
        self.writes += 1;
        self.blocks[id as usize] = block;
    }

    /// Read I/Os since creation (or last [`PageStore::reset_io`]).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Write I/Os since creation (or last [`PageStore::reset_io`]).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Zeroes the I/O counters.
    pub fn reset_io(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_counts_io() {
        let mut s = PageStore::new(10);
        let mut b = s.read(3);
        b.set_record(0, b"hello");
        s.write(3, b);
        let back = s.read(3);
        assert_eq!(&back.record(0)[..5], b"hello");
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.n_blocks(), 10);
    }

    #[test]
    fn peek_does_not_count() {
        let mut s = PageStore::new(2);
        let _ = s.peek(0);
        assert_eq!(s.reads(), 0);
        s.reset_io();
        s.read(1);
        s.reset_io();
        assert_eq!(s.reads(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_block_panics() {
        let mut s = PageStore::new(1);
        s.read(1);
    }
}
