//! Disk blocks and record addressing.
//!
//! The testbed stored six database records per 512-byte block; the block
//! ("granule") is the unit of disk transfer, locking, and journaling
//! (paper §2 and §3 assumptions).

/// Bytes per disk block (paper §2: "Each disk block contained 512 bytes").
pub const BLOCK_SIZE: usize = 512;

/// Database records per block (paper §2: "stored six database records").
pub const RECORDS_PER_BLOCK: usize = 6;

/// Bytes per record slot: 6 × 85 = 510 bytes of payload; the remaining two
/// bytes of the block are header padding.
pub const RECORD_SIZE: usize = BLOCK_SIZE / RECORDS_PER_BLOCK - 1; // 84

/// Identifies a record as (block, slot). Blocks are site-local.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Block (granule) number within the site's database file.
    pub block: u32,
    /// Slot within the block, `0..RECORDS_PER_BLOCK`.
    pub slot: u8,
}

impl RecordId {
    /// Builds a `RecordId` from a flat record number.
    pub fn from_flat(record_no: u64) -> Self {
        RecordId {
            block: (record_no / RECORDS_PER_BLOCK as u64) as u32,
            slot: (record_no % RECORDS_PER_BLOCK as u64) as u8,
        }
    }

    /// Flat record number (inverse of [`RecordId::from_flat`]).
    pub fn to_flat(self) -> u64 {
        self.block as u64 * RECORDS_PER_BLOCK as u64 + self.slot as u64
    }
}

/// One 512-byte disk block.
///
/// The bytes are stored inline (not boxed): a volume's `Vec<Block>` is one
/// contiguous allocation, so creating a database is a single memset and
/// block access never chases a pointer. Where a block must live behind an
/// indirection (journal payloads), the owner boxes it explicitly.
#[derive(Clone, PartialEq, Eq)]
pub struct Block {
    data: [u8; BLOCK_SIZE],
}

impl std::fmt::Debug for Block {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Block({:02x?}…)", &self.data[..8])
    }
}

impl Default for Block {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl Block {
    /// An all-zero block.
    pub fn zeroed() -> Self {
        Block {
            data: [0u8; BLOCK_SIZE],
        }
    }

    /// Raw block bytes.
    pub fn bytes(&self) -> &[u8; BLOCK_SIZE] {
        &self.data
    }

    /// Mutable raw block bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8; BLOCK_SIZE] {
        &mut self.data
    }

    /// Reconstructs a block from raw bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), BLOCK_SIZE, "block must be {BLOCK_SIZE} bytes");
        let mut b = Block::zeroed();
        b.data.copy_from_slice(bytes);
        b
    }

    fn slot_range(slot: u8) -> std::ops::Range<usize> {
        assert!(
            (slot as usize) < RECORDS_PER_BLOCK,
            "slot {slot} out of range"
        );
        let start = slot as usize * RECORD_SIZE;
        start..start + RECORD_SIZE
    }

    /// Reads the record in `slot`.
    pub fn record(&self, slot: u8) -> &[u8] {
        &self.data[Self::slot_range(slot)]
    }

    /// Overwrites the record in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `payload` is longer than [`RECORD_SIZE`]; shorter payloads
    /// are zero-padded (fixed-slot layout, as in the testbed's CODASYL
    /// store).
    pub fn set_record(&mut self, slot: u8, payload: &[u8]) {
        assert!(
            payload.len() <= RECORD_SIZE,
            "record payload {} exceeds slot size {RECORD_SIZE}",
            payload.len()
        );
        let range = Self::slot_range(slot);
        self.data[range.clone()].fill(0);
        self.data[range.start..range.start + payload.len()].copy_from_slice(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_constants_are_consistent() {
        const { assert!(RECORD_SIZE * RECORDS_PER_BLOCK <= BLOCK_SIZE) };
        assert_eq!(RECORD_SIZE, 84);
    }

    #[test]
    fn record_id_flat_roundtrip() {
        for n in [0u64, 1, 5, 6, 17_999] {
            assert_eq!(RecordId::from_flat(n).to_flat(), n);
        }
        let r = RecordId::from_flat(13);
        assert_eq!(r.block, 2);
        assert_eq!(r.slot, 1);
    }

    #[test]
    fn set_and_get_records_are_isolated_per_slot() {
        let mut b = Block::zeroed();
        b.set_record(0, b"alpha");
        b.set_record(5, b"omega");
        assert_eq!(&b.record(0)[..5], b"alpha");
        assert_eq!(&b.record(5)[..5], b"omega");
        // slots in between untouched
        assert!(b.record(2).iter().all(|&x| x == 0));
    }

    #[test]
    fn set_record_zero_pads() {
        let mut b = Block::zeroed();
        b.set_record(1, &[0xFF; RECORD_SIZE]);
        b.set_record(1, b"x");
        assert_eq!(b.record(1)[0], b'x');
        assert!(b.record(1)[1..].iter().all(|&x| x == 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_slot_panics() {
        let b = Block::zeroed();
        b.record(6);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut b = Block::zeroed();
        b.set_record(3, b"payload");
        let copy = Block::from_bytes(b.bytes());
        assert_eq!(copy, b);
    }
}
