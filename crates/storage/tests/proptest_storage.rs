//! Property-based tests for the storage engine and journal.

use carat_storage::{Block, Database, Journal, LogPayload, LogRecord, RecordId, RECORD_SIZE};
use proptest::prelude::*;

fn record_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..=RECORD_SIZE)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Journal frames round-trip bit-exactly through encode/scan for
    /// arbitrary record contents and kinds.
    #[test]
    fn journal_roundtrip(
        entries in proptest::collection::vec(
            (any::<u64>(), 0u8..4, proptest::collection::vec(any::<u8>(), 512)),
            0..20
        )
    ) {
        let mut j = Journal::new();
        let mut expect = Vec::new();
        for (tx, kind, bytes) in entries {
            let payload = match kind {
                0 => LogPayload::BeforeImage {
                    block_id: (tx % 1000) as u32,
                    image: Box::new(Block::from_bytes(&bytes)),
                },
                1 => LogPayload::Prepare,
                2 => LogPayload::Commit,
                _ => LogPayload::Abort,
            };
            let rec = LogRecord { tx, payload };
            j.append(&rec);
            expect.push(rec);
        }
        j.force();
        prop_assert_eq!(j.scan(), expect);
    }

    /// Corruption anywhere in the byte stream never panics the scanner and
    /// never yields *more* records than were written.
    #[test]
    fn corrupt_journal_scans_safely(
        n_recs in 1usize..10,
        corrupt_at in any::<proptest::sample::Index>(),
    ) {
        let mut j = Journal::new();
        for tx in 0..n_recs as u64 {
            j.append(&LogRecord { tx, payload: LogPayload::Commit });
        }
        j.force();
        let len = j.len_bytes();
        j.corrupt_byte(corrupt_at.index(len));
        let scanned = j.scan();
        prop_assert!(scanned.len() <= n_recs);
        // Every record that does parse must be one we wrote.
        for r in &scanned {
            prop_assert!(matches!(r.payload, LogPayload::Commit));
            prop_assert!(r.tx < n_recs as u64);
        }
    }

    /// Updates + rollback always restore the exact pre-transaction bytes,
    /// for arbitrary record payloads and orders.
    #[test]
    fn rollback_restores_exact_bytes(
        writes in proptest::collection::vec(
            (0u32..8, 0u8..6, record_payload()),
            1..30
        )
    ) {
        let mut db = Database::new(8);
        db.load_default();
        let before: Vec<Vec<u8>> = (0..48)
            .map(|i| db.read_committed(RecordId::from_flat(i)))
            .collect();
        db.begin(77).unwrap();
        for (block, slot, payload) in &writes {
            db.update_record(77, RecordId { block: *block, slot: *slot }, payload)
                .unwrap();
        }
        db.rollback(77).unwrap();
        for i in 0..48 {
            prop_assert_eq!(
                &db.read_committed(RecordId::from_flat(i)),
                &before[i as usize],
                "record {} changed", i
            );
        }
    }

    /// Commit makes exactly the written payloads visible (zero-padded to
    /// the slot size), regardless of write order or repetition.
    #[test]
    fn commit_publishes_last_write_per_record(
        writes in proptest::collection::vec(
            (0u32..4, 0u8..6, record_payload()),
            1..20
        )
    ) {
        let mut db = Database::new(4);
        db.begin(5).unwrap();
        let mut last: std::collections::HashMap<(u32, u8), Vec<u8>> = Default::default();
        for (block, slot, payload) in &writes {
            db.update_record(5, RecordId { block: *block, slot: *slot }, payload)
                .unwrap();
            last.insert((*block, *slot), payload.clone());
        }
        db.commit(5).unwrap();
        for ((block, slot), payload) in last {
            let got = db.read_committed(RecordId { block, slot });
            prop_assert_eq!(&got[..payload.len()], &payload[..]);
            prop_assert!(got[payload.len()..].iter().all(|&b| b == 0), "zero padding");
        }
    }
}
