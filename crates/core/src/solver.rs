//! The fixed-point solution procedure (paper §6).
//!
//! Each iteration: update abort probabilities and visit counts, assemble
//! service demands, solve every site's closed multi-chain network by MVA,
//! then refresh the contention quantities (`L_h`, `Pb`, `Pd`, `R_LW`) and
//! the distributed synchronization delays (`R_RW`, `R_CW`, `Pra`) from the
//! MVA results. Updates are damped because the `Pb ↔ L_h ↔ R` loop
//! oscillates at high contention.

use std::collections::BTreeMap;

use carat_obs::{IterLog, IterRow};
use carat_qnet::{CenterKind, MvaScratch, MvaSolution, Network};
use carat_workload::{ChainType, SystemParams, TxType, WorkloadSpec};

use crate::contention::{
    blocking_probability, deadlock_probability_scratch, lock_wait_times_consistent_into,
    locks_held, sigma, ChainLockState, LockWaitScratch,
};
use crate::demands::{chain_contexts, demands, phase_costs, ChainCtx, DelayTimes};
use crate::output::{ConvergenceInfo, ModelNodeReport, ModelReport, ModelTypeReport};
use crate::phases::{Hazards, Phase, TrafficScratch, TransitionMatrix, VisitCounts};

/// What to solve: workload + transaction size on the standard parameters.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Hardware and cost parameters (Table 2 defaults).
    pub params: SystemParams,
    /// User populations.
    pub workload: WorkloadSpec,
    /// `n`: requests per transaction.
    pub n_requests: u32,
}

impl ModelConfig {
    /// Standard two-node testbed configuration.
    pub fn new(workload: WorkloadSpec, n_requests: u32) -> Self {
        ModelConfig {
            params: SystemParams::default(),
            workload,
            n_requests,
        }
    }
}

/// Which algorithm solves each site's closed queueing network inside one
/// fixed-point iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MvaAlgo {
    /// Exact MVA over the full population lattice (the default). Lattices
    /// above the internal cap fall back to Schweitzer–Bard.
    #[default]
    Exact,
    /// Schweitzer–Bard approximate MVA.
    Schweitzer,
    /// Chandy–Neuse Linearizer approximate MVA: Schweitzer–Bard corrected
    /// by first-order fraction deviations; markedly closer to exact on
    /// small multi-chain populations at a small constant-factor cost over
    /// Schweitzer–Bard.
    Linearizer,
}

impl MvaAlgo {
    /// Parses the CLI spelling: `exact`, `schweitzer`, or `linearizer`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "exact" => Some(MvaAlgo::Exact),
            "schweitzer" => Some(MvaAlgo::Schweitzer),
            "linearizer" => Some(MvaAlgo::Linearizer),
            _ => None,
        }
    }
}

/// Outer-loop acceleration of the damped fixed-point iteration
/// (DESIGN.md §12). Both schemes operate on the flattened per-chain
/// contention state vector (`Pb`, `Pd`, `R_LW`, `R_RW`, `R_CWC`, `R_CWA`,
/// `Pra`) and are safeguarded: a candidate that leaves the [0, 1] /
/// positivity bounds is discarded before being applied, and an applied
/// step whose follow-up residual grows is rolled back to the plain damped
/// iterate (with a short cooldown). `Off` is byte-identical to the
/// unaccelerated solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Accel {
    /// Plain damped iteration (the default).
    #[default]
    Off,
    /// Safeguarded componentwise Aitken Δ² (vector Steffensen): every two
    /// plain steps extrapolate one accelerated step, then the history
    /// restarts.
    Aitken,
    /// Anderson mixing with history depth `m` (typically 2–4): each step
    /// combines the last `m + 1` iterates through a small regularised
    /// least-squares problem over their residuals.
    Anderson(usize),
}

impl Accel {
    /// Parses the CLI spelling: `off`, `aitken`, `anderson`, or
    /// `anderson:M`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(Accel::Off),
            "aitken" => Some(Accel::Aitken),
            "anderson" => Some(Accel::Anderson(DEFAULT_ANDERSON_DEPTH)),
            _ => {
                let m = s.strip_prefix("anderson:")?.parse::<usize>().ok()?;
                (m >= 1).then_some(Accel::Anderson(m))
            }
        }
    }
}

/// Anderson history depth used by the bare `anderson` spelling.
pub const DEFAULT_ANDERSON_DEPTH: usize = 3;

/// Solver knobs and ablation switches (DESIGN.md §9).
#[derive(Debug, Clone)]
pub struct ModelOptions {
    /// Damping factor λ for state updates (new = λ·computed + (1−λ)·old).
    pub damping: f64,
    /// Convergence tolerance on the damped state.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Per-site MVA algorithm (see [`MvaAlgo`]).
    pub mva: MvaAlgo,
    /// Outer-loop acceleration (see [`Accel`]; `Off` keeps the solve
    /// byte-identical to the plain damped iteration).
    pub accel: Accel,
    /// Ablation: ignore deadlocks/rollback entirely (`Pd = 0`), as many
    /// earlier models did.
    pub ignore_deadlocks: bool,
    /// Ablation: treat every lock as exclusive, the assumption the paper
    /// criticises in prior analytical work.
    pub all_locks_exclusive: bool,
    /// Ablation: override the blocking-ratio formula with a constant
    /// (the paper used 1/3).
    pub fixed_br: Option<f64>,
    /// Extension: model the TM server as an extra serialisation center
    /// (the paper ignores it and reports the resulting optimism at n = 4).
    pub model_tm_serialization: bool,
    /// Extension: give the recovery journal its own disk instead of
    /// sharing the database device (the testbed could not — paper §2 calls
    /// the shared disk a bottleneck a real deployment would avoid).
    pub separate_log_disk: bool,
    /// Worker threads for solving the independent per-site MVA networks of
    /// one iteration concurrently (1 = sequential). Sites are solved with
    /// identical arithmetic into disjoint buffers, so the results are
    /// bitwise identical for every value of `threads`; small lattices stay
    /// sequential regardless because thread spawn would dominate.
    pub threads: usize,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            damping: 0.5,
            tol: 1e-9,
            max_iter: 400,
            mva: MvaAlgo::Exact,
            accel: Accel::Off,
            ignore_deadlocks: false,
            all_locks_exclusive: false,
            fixed_br: None,
            model_tm_serialization: false,
            separate_log_disk: false,
            threads: 1,
        }
    }
}

/// Mutable per-chain solver state.
#[derive(Debug, Clone, Default)]
struct ChainState {
    pb: f64,
    pd: f64,
    pra: f64,
    r_lw: f64,
    r_rw: f64,
    r_cwc: f64,
    r_cwa: f64,
    /// MVA commit-to-commit cycle time.
    r_cycle: f64,
    /// Successful-execution time.
    r_s: f64,
    /// Throughput (cycles per ms).
    x: f64,
    l_h: f64,
    sigma: f64,
    p_a: f64,
    n_s: f64,
    blocked_frac: f64,
    ios_per_cycle: f64,
    log_ios_per_cycle: f64,
    cpu_demand: f64,
    disk_demand: f64,
    log_demand: f64,
}

/// Opaque snapshot of a converged fixed point, used to seed the solve of a
/// neighboring parameter point ([`Model::solve_warm`]).
///
/// Adjacent sweep points (same workload, next transaction size or
/// population) have nearby fixed points, so starting the iteration from a
/// neighbor's converged state typically cuts the iteration count by a
/// large factor. A snapshot is only compatible with a configuration that
/// produces the same chain structure (same sites and chain types, in the
/// same order); populations and per-request costs may differ — that is the
/// point. Incompatible snapshots are ignored and the solve falls back to a
/// cold start.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// Chain structure this snapshot belongs to.
    keys: Vec<(usize, ChainType)>,
    /// The converged per-chain iteration state.
    st: Vec<ChainState>,
}

/// Number of accelerated state quantities per chain — the damped state
/// vector in update order: `Pb`, `Pd`, `R_LW`, `R_RW`, `R_CWC`, `R_CWA`,
/// `Pra`.
const ACCEL_FIELDS: usize = 7;

/// Plain damped iterations to complete before the first acceleration
/// attempt (lets the cold-start transient settle).
const ACCEL_START: usize = 3;

/// Iterations to wait after a rejected accelerated step before trying
/// again.
const ACCEL_COOLDOWN: usize = 1;

/// Reject a candidate whose step exceeds this multiple of the latest
/// residual-vector max-norm: extrapolations that large come from a
/// nearly-singular difference system, not a plausible fixed-point
/// estimate.
const ACCEL_MAX_AMPLIFICATION: f64 = 100.0;

/// The Anderson extrapolation acts on the *undamped* residual: the history
/// stores damped steps `f = λ·f_raw`, so the mixing term is rescaled by
/// `1/λ` (with λ = 0.5, [`ModelOptions::damping`]'s default — acceleration
/// bakes this in rather than reading the option because a non-default λ is
/// an ablation knob, and a mis-scaled candidate is merely less effective,
/// never wrong: the safeguards below still screen it).
const INV_DAMP: f64 = 2.0;

/// Retro-check grace: an applied accelerated step is kept as long as the
/// follow-up residual stays below this multiple of the residual at the
/// moment the step was taken. Anderson iterates are not monotone — a
/// transient bump of a near-converged component is normal — and rejecting
/// on any increase costs a rollback plus cooldown; the bounded grace keeps
/// the non-monotone steps that still contract over two iterations. Aitken
/// gets no grace: it restarts its history at every extrapolation, so a
/// step that failed to contract has polluted exactly the two iterates the
/// next extrapolation would build on — strict rejection is cheaper there.
const ANDERSON_GRACE: f64 = 2.0;

/// Safeguarded outer-loop accelerator over the flattened contention state
/// (see [`Accel`]). The engine watches the plain damped iteration
/// `x_{i+1} = G(x_i)` (where `G` already includes the damping), keeps a
/// short history of iterates `x_i` and residuals `f_i = G(x_i) − x_i`,
/// and occasionally replaces the damped iterate with an extrapolated
/// candidate. Every candidate is screened against the [0, 1]/positivity
/// bounds before being applied, and retro-checked one iteration later: if
/// the residual grew (beyond [`ANDERSON_GRACE`] for Anderson), the state
/// is rolled back to the saved damped iterate and acceleration pauses for
/// [`ACCEL_COOLDOWN`] iterations.
struct AccelEngine {
    mode: Accel,
    /// Picard history (oldest first): iterates and their residuals.
    hist_x: Vec<Vec<f64>>,
    hist_f: Vec<Vec<f64>>,
    /// The iterate the running iteration started from.
    x_prev: Vec<f64>,
    /// The post-update iterate of the running iteration.
    x_curr: Vec<f64>,
    /// Latest extrapolated candidate.
    cand: Vec<f64>,
    /// Damped state to restore when the pending step is rejected.
    snapshot: Vec<ChainState>,
    /// An accelerated step was applied and awaits its residual check.
    pending: bool,
    /// Residual at the moment the pending step was taken.
    pending_residual: f64,
    cooldown: usize,
    accepted: usize,
    rejected: usize,
}

impl AccelEngine {
    fn new(mode: Accel, st: &[ChainState]) -> Self {
        let dim = st.len() * ACCEL_FIELDS;
        let mut eng = AccelEngine {
            mode,
            hist_x: Vec::new(),
            hist_f: Vec::new(),
            x_prev: vec![0.0; dim],
            x_curr: vec![0.0; dim],
            cand: vec![0.0; dim],
            snapshot: Vec::new(),
            pending: false,
            pending_residual: f64::INFINITY,
            cooldown: 0,
            accepted: 0,
            rejected: 0,
        };
        Self::extract(st, &mut eng.x_prev);
        eng
    }

    /// History pairs kept: Aitken restarts after every extrapolation and
    /// needs two consecutive pairs; Anderson(m) mixes the last m + 1.
    fn depth(&self) -> usize {
        match self.mode {
            Accel::Off => 0,
            Accel::Aitken => 2,
            Accel::Anderson(m) => m.max(1) + 1,
        }
    }

    /// Flattens the damped state quantities of every chain into `out`.
    fn extract(st: &[ChainState], out: &mut [f64]) {
        for (k, s) in st.iter().enumerate() {
            let b = k * ACCEL_FIELDS;
            out[b] = s.pb;
            out[b + 1] = s.pd;
            out[b + 2] = s.r_lw;
            out[b + 3] = s.r_rw;
            out[b + 4] = s.r_cwc;
            out[b + 5] = s.r_cwa;
            out[b + 6] = s.pra;
        }
    }

    /// Writes the candidate back into the chain states.
    fn inject_candidate(&self, st: &mut [ChainState]) {
        for (k, s) in st.iter_mut().enumerate() {
            let b = k * ACCEL_FIELDS;
            s.pb = self.cand[b];
            s.pd = self.cand[b + 1];
            s.r_lw = self.cand[b + 2];
            s.r_rw = self.cand[b + 3];
            s.r_cwc = self.cand[b + 4];
            s.r_cwa = self.cand[b + 5];
            s.pra = self.cand[b + 6];
        }
    }

    /// Records the completed plain step `x_prev → st` as a history pair
    /// and rolls `x_prev` forward.
    fn record(&mut self, st: &[ChainState]) {
        Self::extract(st, &mut self.x_curr);
        let f: Vec<f64> = self
            .x_curr
            .iter()
            .zip(&self.x_prev)
            .map(|(c, p)| c - p)
            .collect();
        self.hist_x.push(self.x_prev.clone());
        self.hist_f.push(f);
        let depth = self.depth();
        while self.hist_x.len() > depth {
            self.hist_x.remove(0);
            self.hist_f.remove(0);
        }
    }

    /// Forgets the Picard history (after an extrapolation restart or a
    /// rollback, the stored pairs no longer describe consecutive steps).
    fn clear_history(&mut self) {
        self.hist_x.clear();
        self.hist_f.clear();
    }

    /// Rolls `x_prev` forward to the state the next iteration starts from
    /// (damped, restored, or accelerated — whatever `st` holds now).
    fn roll(&mut self, st: &[ChainState]) {
        Self::extract(st, &mut self.x_prev);
    }

    /// Builds an extrapolated candidate in `self.cand` from the current
    /// history. Returns `false` when the history is too short or the
    /// extrapolation is numerically unusable; `true` means `cand` holds a
    /// candidate that differs from the plain damped iterate.
    fn try_candidate(&mut self) -> bool {
        if self.hist_x.len() < 2 {
            return false;
        }
        let ok = match self.mode {
            Accel::Off => false,
            Accel::Aitken => self.aitken_candidate(),
            Accel::Anderson(_) => self.anderson_candidate(),
        };
        if !ok {
            return false;
        }
        // A candidate equal to the damped iterate would make the pending
        // bookkeeping a pure no-op; skip it.
        self.cand.iter().zip(&self.x_curr).any(|(c, x)| c != x)
    }

    /// Vector Aitken Δ² (Irons–Tuck form) over the last two consecutive
    /// pairs. The scalar recursion `x₂ − f₁²/(f₁ − f₀)` generalises to the
    /// projected step `x₂ − θ·f₁` with `θ = ⟨f₁, Δf⟩ / ⟨Δf, Δf⟩`, which
    /// estimates one global contraction rate instead of one per component —
    /// the componentwise form misfires when individual denominators
    /// `f₁ᵢ − f₀ᵢ` pass near zero. Components are weighted by
    /// `1 / (1 + |x|)` so the rate estimate matches the relative-error
    /// metric the solver converges on (probabilities and millisecond-scale
    /// times would otherwise be weighted 100:1).
    fn aitken_candidate(&mut self) -> bool {
        let last = self.hist_f.len() - 1;
        let (f0, f1) = (&self.hist_f[last - 1], &self.hist_f[last]);
        let x1 = &self.hist_x[last];
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for i in 0..self.cand.len() {
            let w = 1.0 / (1.0 + (x1[i] + f1[i]).abs());
            let d = (f1[i] - f0[i]) * w;
            num += f1[i] * w * d;
            den += d * d;
        }
        let theta = num / den;
        // θ estimates ρ/(ρ−1) for contraction rate ρ ∈ (0, 1), so a
        // meaningful extrapolation has θ < 0 (a positive θ means the
        // residual grew and Δ² would step backwards — let damping work).
        if !theta.is_finite() || !(-50.0..0.0).contains(&theta) {
            return false;
        }
        for i in 0..self.cand.len() {
            self.cand[i] = x1[i] + (1.0 - theta) * f1[i];
        }
        true
    }

    /// Anderson mixing (type II) over the stored pairs: solve the
    /// regularised normal equations
    /// `(ΔFᵀΔF + εI) γ = ΔFᵀ f_last` (γ is invariant under uniform
    /// rescaling of the residuals) and extrapolate on the undamped
    /// residuals `f/λ` (see [`INV_DAMP`]):
    /// `x* = x_last + f_last/λ − Σ γᵢ (ΔXᵢ + ΔFᵢ/λ)`.
    fn anderson_candidate(&mut self) -> bool {
        let k = self.hist_f.len();
        let cols = k - 1;
        let dim = self.cand.len();
        let f_last = &self.hist_f[k - 1];
        let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
        let df = |i: usize, c: usize| self.hist_f[i + 1][c] - self.hist_f[i][c];
        let dx = |i: usize, c: usize| self.hist_x[i + 1][c] - self.hist_x[i][c];
        let mut g = vec![0.0f64; cols * cols];
        let mut rhs = vec![0.0f64; cols];
        let mut dfi = vec![0.0f64; dim];
        let mut dfj = vec![0.0f64; dim];
        for i in 0..cols {
            for (c, v) in dfi.iter_mut().enumerate() {
                *v = df(i, c);
            }
            for j in 0..cols {
                for (c, v) in dfj.iter_mut().enumerate() {
                    *v = df(j, c);
                }
                g[i * cols + j] = dot(&dfi, &dfj);
            }
            rhs[i] = dot(&dfi, f_last);
        }
        let trace: f64 = (0..cols).map(|i| g[i * cols + i]).sum();
        let eps = 1e-10 * trace.max(1e-300);
        for i in 0..cols {
            g[i * cols + i] += eps;
        }
        let Ok(gamma) = carat_qnet::solve_dense(&g, &rhs) else {
            return false;
        };
        if gamma.iter().any(|v| !v.is_finite()) {
            return false;
        }
        for (c, &fl) in f_last.iter().enumerate() {
            let mut v = self.x_curr[c] + (INV_DAMP - 1.0) * fl;
            for (i, &gi) in gamma.iter().enumerate() {
                v -= gi * (dx(i, c) + INV_DAMP * df(i, c));
            }
            self.cand[c] = v;
        }
        true
    }

    /// Screens the candidate: finite, probabilities in [0, 1], waits
    /// non-negative, and the step bounded relative to the latest residual
    /// vector.
    fn candidate_in_bounds(&self) -> bool {
        let f_norm = self
            .hist_f
            .last()
            .map(|f| f.iter().fold(0.0f64, |m, v| m.max(v.abs())))
            .unwrap_or(0.0);
        let max_step = ACCEL_MAX_AMPLIFICATION * f_norm + 1e-12;
        self.cand.iter().enumerate().all(|(i, &v)| {
            if !v.is_finite() || (v - self.x_curr[i]).abs() > max_step {
                return false;
            }
            match i % ACCEL_FIELDS {
                0 | 1 | 6 => (0.0..=1.0).contains(&v), // Pb, Pd, Pra
                _ => v >= 0.0,                         // residence times
            }
        })
    }
}

/// One site's closed network plus the MVA buffers, built once per solve
/// and reused across all fixed-point iterations: only the demands change
/// between iterations, so the network topology, the lattice-sized scratch
/// table, and the solution buffers persist.
struct SiteSolver {
    /// Indices into `ctxs`/`st` of the chains running at this site, in
    /// chain-id order of `net`.
    site_idx: Vec<usize>,
    net: Network,
    cpu: usize,
    disk: usize,
    log_disk: Option<usize>,
    tm: Option<usize>,
    delay: usize,
    scratch: MvaScratch,
    out: MvaSolution,
}

/// Lattices at or above the exact-MVA cap fall back to Schweitzer–Bard.
const EXACT_LATTICE_MAX: usize = 2_000_000;

/// Minimum per-site lattice size before parallel site solves pay for the
/// thread-spawn overhead.
const PARALLEL_LATTICE_MIN: usize = 4_096;

impl SiteSolver {
    /// Solves this site's network into the held buffers.
    fn run(&mut self, algo: MvaAlgo) {
        match algo {
            MvaAlgo::Exact if self.net.lattice_size() <= EXACT_LATTICE_MAX => {
                self.net.solve_exact_into(&mut self.scratch, &mut self.out);
            }
            MvaAlgo::Linearizer => {
                self.net
                    .solve_linearizer_into(1e-10, 20_000, &mut self.scratch, &mut self.out);
            }
            _ => {
                self.net
                    .solve_approx_into(1e-10, 20_000, &mut self.scratch, &mut self.out);
            }
        }
    }
}

/// The analytical model of the CARAT testbed.
pub struct Model {
    cfg: ModelConfig,
    opts: ModelOptions,
}

impl Model {
    /// Model with default solver options.
    pub fn new(cfg: ModelConfig) -> Self {
        Model {
            cfg,
            opts: ModelOptions::default(),
        }
    }

    /// Model with explicit options (ablations, solver knobs).
    pub fn with_options(cfg: ModelConfig, opts: ModelOptions) -> Self {
        Model { cfg, opts }
    }

    /// Runs the fixed-point iteration and returns the predictions.
    pub fn solve(&self) -> ModelReport {
        self.solve_warm(None).0
    }

    /// Like [`Model::solve`], but optionally seeds the iteration from a
    /// neighboring point's converged state and returns this point's own
    /// converged state for further chaining. `ConvergenceInfo::warm_started`
    /// records whether the seed was actually used (an incompatible or
    /// absent seed falls back to the cold start).
    pub fn solve_warm(&self, warm: Option<&WarmStart>) -> (ModelReport, WarmStart) {
        self.solve_logged(warm, None)
    }

    /// Like [`Model::solve_warm`], but additionally appends one [`IterRow`]
    /// per chain per fixed-point iteration to `log`: the undamped residual
    /// and the post-damping `Pb`, `Pd`, `L_h`, `R_LW`, `R_RW`, `R_CW` —
    /// the trajectory of Eqs. 11–24. The last logged iteration number and
    /// residual equal the returned `ConvergenceInfo` exactly. Passing
    /// `None` is free: the iteration loop does no logging work at all.
    pub fn solve_logged(
        &self,
        warm: Option<&WarmStart>,
        mut log: Option<&mut IterLog>,
    ) -> (ModelReport, WarmStart) {
        let params = &self.cfg.params;
        let ctxs = chain_contexts(params, &self.cfg.workload, self.cfg.n_requests);
        let keys: Vec<(usize, ChainType)> = ctxs.iter().map(|c| (c.site, c.chain)).collect();
        let warm_st = warm.filter(|w| w.keys == keys);
        let mut st: Vec<ChainState> = match warm_st {
            Some(w) => w.st.clone(),
            None => ctxs
                .iter()
                .map(|_| ChainState {
                    n_s: 1.0,
                    sigma: 0.5,
                    ..ChainState::default()
                })
                .collect(),
        };

        let mut iterations = 0;
        let mut converged = false;
        let mut residual = f64::INFINITY;
        let lam = self.opts.damping;
        // (CPU, disk) utilization per site, refreshed by each MVA pass.
        let mut site_util = vec![(0.0f64, 0.0f64); params.sites()];

        // Per-site networks + MVA buffers, built once and reused across
        // iterations (topology and populations are fixed; only demands
        // change), keeping the iteration loop allocation-free.
        let mut solvers: Vec<SiteSolver> = (0..params.sites())
            .map(|site| {
                let site_idx: Vec<usize> =
                    (0..ctxs.len()).filter(|&k| ctxs[k].site == site).collect();
                let mut net = Network::new();
                let cpu = net.add_center("CPU", CenterKind::Queueing);
                let disk = net.add_center("DISK", CenterKind::Queueing);
                let log_disk = if self.opts.separate_log_disk {
                    Some(net.add_center("LOG", CenterKind::Queueing))
                } else {
                    None
                };
                let tm = if self.opts.model_tm_serialization {
                    Some(net.add_center("TM", CenterKind::Queueing))
                } else {
                    None
                };
                let delay = net.add_center("DELAY", CenterKind::Delay);
                for &k in &site_idx {
                    net.add_chain(ctxs[k].chain.label(), ctxs[k].population);
                }
                SiteSolver {
                    site_idx,
                    net,
                    cpu,
                    disk,
                    log_disk,
                    tm,
                    delay,
                    scratch: MvaScratch::default(),
                    out: MvaSolution::empty(),
                }
            })
            .collect();
        let threads = self.opts.threads.max(1).min(solvers.len().max(1));
        let parallel_sites = threads > 1
            && solvers
                .iter()
                .map(|sv| sv.net.lattice_size())
                .max()
                .unwrap_or(0)
                >= PARALLEL_LATTICE_MIN;

        // Hoisted per-iteration buffers: the whole fixed-point loop runs
        // allocation-free (the traffic-equation solve, the contention
        // linear system, and the proposed-update vectors all reuse these).
        let n_chains = ctxs.len();
        let mut traffic_scratch = TrafficScratch::default();
        let mut visits: Vec<VisitCounts> = (0..n_chains).map(|_| VisitCounts::zero()).collect();
        let mut new_pb = vec![0.0; n_chains];
        let mut new_pd = vec![0.0; n_chains];
        let mut new_rlw = vec![0.0; n_chains];
        let mut new_rrw = vec![0.0; n_chains];
        let mut new_cwc = vec![0.0; n_chains];
        let mut new_cwa = vec![0.0; n_chains];
        let mut new_pra = vec![0.0; n_chains];
        let mut chain_delta = vec![0.0; n_chains];
        let mut states: Vec<ChainLockState> = Vec::with_capacity(n_chains);
        let mut lw_scratch = LockWaitScratch::default();
        let mut rlw_site: Vec<f64> = Vec::with_capacity(n_chains);
        let mut pd_dist: Vec<f64> = Vec::with_capacity(n_chains);
        let mut accel = match self.opts.accel {
            Accel::Off => None,
            mode => Some(AccelEngine::new(mode, &st)),
        };

        for iter in 0..self.opts.max_iter {
            iterations = iter + 1;

            // --- Phase/visit/demand assembly -------------------------------
            for (k, ctx) in ctxs.iter().enumerate() {
                let s = &mut st[k];
                let p = (s.pb * s.pd).clamp(0.0, 0.999_999);
                s.sigma = sigma(p, ctx.n_lk.max(1.0));
                let survive_locks = (1.0 - p).powf(ctx.n_lk);
                let survive_remote = match ctx.chain {
                    ChainType::Droc | ChainType::Duc => (1.0 - s.pra).powf(ctx.r),
                    ChainType::Dros | ChainType::Dus => (1.0 - s.pra).powf(ctx.l),
                    _ => 1.0,
                };
                s.p_a = (1.0 - survive_locks * survive_remote).clamp(0.0, 0.95);
                s.n_s = 1.0 / (1.0 - s.p_a);

                let hz = Hazards {
                    pb: s.pb,
                    pd: s.pd,
                    pra: s.pra,
                };
                let m = if ctx.chain.is_slave() {
                    TransitionMatrix::slave(ctx.l, ctx.q, hz)
                } else {
                    TransitionMatrix::local_or_coordinator(ctx.n, ctx.l, ctx.r, ctx.q, hz)
                };
                m.visit_counts_into(&mut traffic_scratch, &mut visits[k]);
            }

            // --- Per-site MVA ----------------------------------------------
            // Refresh the demands of every site's (pre-built) network.
            for sv in &mut solvers {
                for (chain_id, &k) in sv.site_idx.iter().enumerate() {
                    let ctx = &ctxs[k];
                    let s = &st[k];
                    let costs = phase_costs(params, ctx, s.sigma);
                    let d = demands(
                        params,
                        &visits[k],
                        &costs,
                        &DelayTimes {
                            lw: s.r_lw,
                            rw: s.r_rw,
                            cwc: s.r_cwc,
                            cwa: s.r_cwa,
                        },
                        s.n_s,
                    );
                    sv.net.set_demand(chain_id, sv.cpu, d.cpu);
                    match sv.log_disk {
                        Some(log_c) => {
                            sv.net.set_demand(chain_id, sv.disk, d.disk);
                            sv.net.set_demand(chain_id, log_c, d.log);
                        }
                        None => {
                            // Shared device (the testbed's forced layout).
                            sv.net.set_demand(chain_id, sv.disk, d.disk + d.log);
                        }
                    }
                    sv.net.set_demand(chain_id, sv.delay, d.delay);
                    if let Some(tm) = sv.tm {
                        // Shadow-server approximation of the serialised TM:
                        // all TM-phase CPU plus the forced commit write.
                        let v = &visits[k];
                        let tm_demand = s.n_s
                            * (v.get(Phase::Tm) * costs.cpu[Phase::Tm.idx()]
                                + v.get(Phase::Tc) * costs.cpu[Phase::Tc.idx()]
                                + v.get(Phase::Tcio) * costs.disk[Phase::Tcio.idx()]);
                        sv.net.set_demand(chain_id, tm, tm_demand);
                    }
                    let s = &mut st[k];
                    s.ios_per_cycle = d.ios;
                    s.log_ios_per_cycle = d.log_ios;
                    s.cpu_demand = d.cpu;
                    s.disk_demand = if self.opts.separate_log_disk {
                        d.disk
                    } else {
                        d.disk + d.log
                    };
                    s.log_demand = if self.opts.separate_log_disk {
                        d.log
                    } else {
                        0.0
                    };
                }
            }

            // Sites are independent closed networks: solve them
            // concurrently when allowed and worthwhile. Each solve writes
            // only its own buffers with arithmetic identical to the
            // sequential path, so the results are bitwise equal for any
            // thread count.
            let mva = self.opts.mva;
            if parallel_sites {
                let per = solvers.len().div_ceil(threads);
                std::thread::scope(|scope| {
                    for chunk in solvers.chunks_mut(per) {
                        scope.spawn(move || {
                            for sv in chunk {
                                sv.run(mva);
                            }
                        });
                    }
                });
            } else {
                for sv in &mut solvers {
                    sv.run(mva);
                }
            }

            for (site, sv) in solvers.iter().enumerate() {
                for (pos, &k) in sv.site_idx.iter().enumerate() {
                    let s = &mut st[k];
                    s.x = sv.out.throughput[pos];
                    s.r_cycle = sv.out.response[pos];
                    let think = s.n_s * params.think_time_ms;
                    s.r_s = ((s.r_cycle - think) / (1.0 + (s.n_s - 1.0) * s.sigma)).max(1e-9);
                }

                // Stash site utilizations for the delay updates below.
                site_util[site] = (sv.out.utilization[sv.cpu], sv.out.utilization[sv.disk]);
            }

            // --- Contention updates ----------------------------------------
            for solver in solvers.iter().take(params.sites()) {
                let site_idx = &solver.site_idx;
                // L_h and blocked-time fractions first.
                for &k in site_idx {
                    let ctx = &ctxs[k];
                    let s = &mut st[k];
                    s.l_h = locks_held(ctx.n_lk, s.sigma, s.p_a, s.r_s, params.think_time_ms);
                    s.blocked_frac = if s.r_cycle > 0.0 {
                        (s.n_s * ctx.n_lk * s.pb * s.r_lw / s.r_cycle).clamp(0.0, 0.9)
                    } else {
                        0.0
                    };
                }
                states.clear();
                states.extend(site_idx.iter().map(|&k| {
                    let s = &st[k];
                    // B(t): the wait-free part of R_s — what the blocker
                    // actually *does* while holding locks. Both the
                    // lock-wait echo (same site) and the remote-wait echo
                    // (other site's lock waits reflected through RW gaps)
                    // are removed; without this the cross-site R_LW loop
                    // is slowly supercritical and the iteration drifts
                    // into an unphysical thrashing solution. B is anchored
                    // to the pure service content per execution: at least
                    // 1× (can't be faster than service), at most 6×
                    // (bounded queueing inflation at sub-saturation
                    // utilizations).
                    let lw_content = ctxs[k].n_lk * s.pb * s.r_lw;
                    let rw_cw_content =
                        visits[k].get(Phase::Rw) * s.r_rw + visits[k].get(Phase::Cwc) * s.r_cwc;
                    let service = (s.cpu_demand + s.disk_demand) / s.n_s;
                    let useful = (s.r_s - lw_content - rw_cw_content)
                        .clamp(service, 6.0 * service.max(1e-9));
                    ChainLockState {
                        chain: ctxs[k].chain,
                        population: ctxs[k].population as f64,
                        l_h: s.l_h,
                        n_lk: ctxs[k].n_lk,
                        blocked_frac: s.blocked_frac,
                        r_s: s.r_s,
                        useful,
                        pb: s.pb,
                        pd: s.pd,
                    }
                }));
                lock_wait_times_consistent_into(
                    &states,
                    self.opts.all_locks_exclusive,
                    self.opts.fixed_br,
                    &mut lw_scratch,
                    &mut rlw_site,
                );
                for (pos, &k) in site_idx.iter().enumerate() {
                    new_pb[k] = blocking_probability(
                        ctxs[k].chain,
                        &states,
                        params.effective_granules(),
                        self.opts.all_locks_exclusive,
                    );
                    new_pd[k] = if self.opts.ignore_deadlocks {
                        0.0
                    } else {
                        deadlock_probability_scratch(
                            pos,
                            &states,
                            self.opts.all_locks_exclusive,
                            &mut pd_dist,
                        )
                    };
                    new_rlw[k] = rlw_site[pos];
                }
            }

            // --- Distributed delays (Eqs. 21–24 + CW) ----------------------
            let alpha = params.comm_delay_ms;
            new_rrw.fill(0.0);
            new_cwc.fill(0.0);
            new_cwa.fill(0.0);
            new_pra.fill(0.0);
            for k in 0..ctxs.len() {
                let ctx = &ctxs[k];
                match ctx.chain {
                    ChainType::Droc | ChainType::Duc => {
                        let sc = ctx.chain.counterpart().expect("coordinator");
                        let mut active_sum = 0.0;
                        let mut commit_max: f64 = 0.0;
                        let mut pra_survive = 1.0;
                        let mut n_slaves = 0.0;
                        for (j, sl) in ctxs.iter().enumerate() {
                            if sl.chain != sc || sl.site == ctx.site {
                                continue;
                            }
                            let ss = &st[j];
                            let (u_cpu, u_disk) = site_util[sl.site];
                            let infl_cpu = (1.0 / (1.0 - u_cpu.min(0.95))).min(5.0);
                            let infl_disk = (1.0 / (1.0 - u_disk.min(0.95))).min(5.0);
                            let commit_part = params.basic.tc_cpu(sc) * infl_cpu
                                + params.basic.commit_ios(sc) as f64
                                    * params.nodes[sl.site].disk_io_ms
                                    * infl_disk;
                            // Slave time actively serving one remote request:
                            // its successful execution minus its own waits
                            // and commit processing, per request.
                            let active =
                                ((ss.r_s - visits_rw_estimate(sl) * ss.r_rw - commit_part) / sl.l)
                                    .max(0.0);
                            active_sum += active;
                            commit_max = commit_max.max(commit_part);
                            pra_survive *= (1.0 - ss.pb * ss.pd).powf(sl.q);
                            n_slaves += 1.0;
                        }
                        if n_slaves > 0.0 {
                            new_rrw[k] = 2.0 * alpha + active_sum / n_slaves;
                            new_cwc[k] = 4.0 * alpha + commit_max;
                            new_cwa[k] = 2.0 * alpha;
                            new_pra[k] = 1.0 - pra_survive;
                        }
                    }
                    ChainType::Dros | ChainType::Dus => {
                        let cc = ctx.chain.counterpart().expect("slave");
                        // The coordinator(s) this slave serves live at the
                        // other sites.
                        let mut gap_sum = 0.0;
                        let mut cwc_max: f64 = 0.0;
                        let mut pra_survive = 1.0;
                        let mut n_coord = 0.0;
                        for (j, co) in ctxs.iter().enumerate() {
                            if co.chain != cc || co.site == ctx.site {
                                continue;
                            }
                            let cs = &st[j];
                            let (u_cpu, u_disk) = site_util[co.site];
                            let infl_cpu = (1.0 / (1.0 - u_cpu.min(0.95))).min(5.0);
                            let infl_disk = (1.0 / (1.0 - u_disk.min(0.95))).min(5.0);
                            let decision = params.basic.tc_cpu(cc) / 2.0 * infl_cpu
                                + params.basic.commit_ios(cc) as f64
                                    * params.nodes[co.site].disk_io_ms
                                    * infl_disk;
                            let gap =
                                ((cs.r_s - co.r * cs.r_rw - cs.r_cwc) / co.r.max(1.0)).max(0.0);
                            gap_sum += gap + 2.0 * alpha;
                            cwc_max = cwc_max.max(2.0 * alpha + decision);
                            // Coordinator-side aborts per slave wait: the
                            // coordinator acquires N_lk(c)/r locks per gap.
                            pra_survive *= (1.0 - cs.pb * cs.pd).powf(co.n_lk / co.r.max(1.0));
                            n_coord += 1.0;
                        }
                        if n_coord > 0.0 {
                            new_rrw[k] = gap_sum / n_coord;
                            new_cwc[k] = cwc_max;
                            new_cwa[k] = 2.0 * alpha;
                            new_pra[k] = 1.0 - pra_survive;
                        }
                    }
                    _ => {}
                }
            }

            // --- Damped state update + convergence check -------------------
            let mut delta: f64 = 0.0;
            for k in 0..ctxs.len() {
                let s = &mut st[k];
                let mut kdelta: f64 = 0.0;
                let mut upd = |old: &mut f64, new: f64| {
                    // Judge convergence on the *undamped* step. The damped
                    // move `|v − old| = λ·|new − old|` under-states the
                    // distance from the fixed point by the damping factor,
                    // which declared convergence a factor 1/λ too early.
                    kdelta = kdelta.max((new - *old).abs() / (1.0 + new.abs()));
                    *old = lam * new + (1.0 - lam) * *old;
                };
                upd(&mut s.pb, new_pb[k]);
                upd(&mut s.pd, new_pd[k]);
                upd(&mut s.r_lw, new_rlw[k]);
                upd(&mut s.r_rw, new_rrw[k]);
                upd(&mut s.r_cwc, new_cwc[k]);
                upd(&mut s.r_cwa, new_cwa[k]);
                upd(&mut s.pra, new_pra[k]);
                chain_delta[k] = kdelta;
                // The global residual is the max over per-chain maxima —
                // bitwise the same number the flat max-fold produced.
                delta = delta.max(kdelta);
            }
            residual = delta;

            // --- Acceleration ----------------------------------------------
            // `restored` marks an iteration whose computed step was thrown
            // away because the preceding accelerated step made the residual
            // grow; its `delta` does not participate in convergence.
            let mut marker: &'static str = "";
            let mut restored = false;
            if let Some(eng) = accel.as_mut() {
                if eng.pending {
                    eng.pending = false;
                    let grace = match eng.mode {
                        Accel::Anderson(_) => ANDERSON_GRACE,
                        _ => 1.0,
                    };
                    if delta > grace * eng.pending_residual && delta >= self.opts.tol {
                        // The accelerated step increased the residual: roll
                        // back to the plain damped iterate it replaced.
                        st.clone_from(&eng.snapshot);
                        eng.clear_history();
                        eng.rejected += 1;
                        eng.cooldown = ACCEL_COOLDOWN;
                        marker = "rej";
                        restored = true;
                    } else {
                        eng.accepted += 1;
                    }
                }
                if !restored {
                    eng.record(&st);
                    if delta >= self.opts.tol {
                        if eng.cooldown > 0 {
                            eng.cooldown -= 1;
                        } else if iterations >= ACCEL_START
                            && eng.try_candidate()
                            && eng.candidate_in_bounds()
                        {
                            eng.snapshot.clone_from(&st);
                            eng.pending = true;
                            eng.pending_residual = delta;
                            eng.inject_candidate(&mut st);
                            if eng.mode == Accel::Aitken {
                                // Steffensen restart: the candidate breaks
                                // the consecutive-iterate structure Δ² needs.
                                eng.clear_history();
                            }
                            marker = "acc";
                        }
                    }
                }
                eng.roll(&st);
            }

            if let Some(log) = log.as_deref_mut() {
                // Post-update state: what the next iteration starts from
                // (and, on the final iteration, exactly the converged state
                // the report is packaged from). `l_h` is this iteration's
                // contention-section value; the residual column is the
                // chain's own pre-damping step (see `IterRow::residual`).
                for (k, ctx) in ctxs.iter().enumerate() {
                    let s = &st[k];
                    log.push(IterRow {
                        iter: iterations,
                        site: ctx.site,
                        chain: ctx.chain.label().to_string(),
                        residual: chain_delta[k],
                        pb: s.pb,
                        pd: s.pd,
                        l_h: s.l_h,
                        r_lw: s.r_lw,
                        r_rw: s.r_rw,
                        r_cw: s.r_cwc,
                        accel: marker,
                    });
                }
            }
            if !restored && delta < self.opts.tol {
                converged = true;
                break;
            }
        }

        let (accel_accepted, accel_rejected) = accel
            .as_ref()
            .map(|e| (e.accepted, e.rejected))
            .unwrap_or((0, 0));
        let report = self.package(
            &ctxs,
            &st,
            ConvergenceInfo {
                converged,
                iterations,
                residual,
                warm_started: warm_st.is_some(),
                accel_accepted,
                accel_rejected,
            },
        );
        (report, WarmStart { keys, st })
    }

    fn package(
        &self,
        ctxs: &[ChainCtx],
        st: &[ChainState],
        convergence: ConvergenceInfo,
    ) -> ModelReport {
        let params = &self.cfg.params;
        let mut nodes = Vec::new();
        for site in 0..params.sites() {
            let mut per_type: BTreeMap<TxType, ModelTypeReport> = BTreeMap::new();
            let mut per_chain = Vec::new();
            let mut tx_per_s = 0.0;
            let mut records_per_s = 0.0;
            let mut cpu_u = 0.0;
            let mut disk_u = 0.0;
            let mut log_u = 0.0;
            let mut dio = 0.0;
            for (k, ctx) in ctxs.iter().enumerate() {
                if ctx.site != site {
                    continue;
                }
                let s = &st[k];
                // MVA throughput is already the chain total (all N(t, i)
                // customers), in cycles per ms.
                cpu_u += s.x * s.cpu_demand;
                disk_u += s.x * s.disk_demand;
                log_u += s.x * s.log_demand;
                dio += s.x * (s.ios_per_cycle + s.log_ios_per_cycle) * 1000.0;

                // Final-state phase decomposition (service content per
                // commit cycle) for comparison with the simulator's
                // measured residence.
                let hz = Hazards {
                    pb: s.pb,
                    pd: s.pd,
                    pra: s.pra,
                };
                let m = if ctx.chain.is_slave() {
                    TransitionMatrix::slave(ctx.l, ctx.q, hz)
                } else {
                    TransitionMatrix::local_or_coordinator(ctx.n, ctx.l, ctx.r, ctx.q, hz)
                };
                let v = m.visit_counts();
                let costs = phase_costs(params, ctx, s.sigma);
                let mut phase_ms = std::collections::BTreeMap::new();
                for ph in Phase::ALL {
                    let service = costs.cpu[ph.idx()] + costs.disk[ph.idx()] + costs.log[ph.idx()];
                    let delay = match ph {
                        Phase::Lw => s.r_lw,
                        Phase::Rw => s.r_rw,
                        Phase::Cwc => s.r_cwc,
                        Phase::Cwa => s.r_cwa,
                        Phase::Ut => params.think_time_ms,
                        _ => 0.0,
                    };
                    let total = s.n_s * v.get(ph) * (service + delay);
                    if total > 1e-9 {
                        phase_ms.insert(ph.label(), total);
                    }
                }

                let rep = ModelTypeReport {
                    phase_ms,
                    xput_per_s: s.x * 1000.0,
                    response_ms: s.r_cycle,
                    n_s: s.n_s,
                    pb: s.pb,
                    pd: s.pd,
                    p_a: s.p_a,
                    l_h: s.l_h,
                    r_lw_ms: s.r_lw,
                };
                per_chain.push((ctx.chain, rep.clone()));
                if !ctx.chain.is_slave() {
                    // User-visible throughput: local chains and coordinators
                    // are homed here.
                    tx_per_s += rep.xput_per_s;
                    records_per_s += rep.xput_per_s * ctx.n * params.records_per_request as f64;
                    per_type.insert(ctx.chain.user_type(), rep);
                }
            }
            nodes.push(ModelNodeReport {
                name: params.nodes[site].name.clone(),
                cpu_util: cpu_u,
                disk_util: disk_u,
                log_disk_util: log_u,
                dio_per_s: dio,
                tx_per_s,
                records_per_s,
                per_type,
                per_chain,
            });
        }
        ModelReport { nodes, convergence }
    }
}

/// Estimated RW visits per slave execution (= its request count).
fn visits_rw_estimate(ctx: &ChainCtx) -> f64 {
    ctx.l
}
