//! The fixed-point solution procedure (paper §6).
//!
//! Each iteration: update abort probabilities and visit counts, assemble
//! service demands, solve every site's closed multi-chain network by MVA,
//! then refresh the contention quantities (`L_h`, `Pb`, `Pd`, `R_LW`) and
//! the distributed synchronization delays (`R_RW`, `R_CW`, `Pra`) from the
//! MVA results. Updates are damped because the `Pb ↔ L_h ↔ R` loop
//! oscillates at high contention.

use std::collections::BTreeMap;

use carat_obs::{IterLog, IterRow};
use carat_qnet::{CenterKind, MvaScratch, MvaSolution, Network};
use carat_workload::{ChainType, SystemParams, TxType, WorkloadSpec};

use crate::contention::{
    blocking_probability, deadlock_probability, lock_wait_times_consistent, locks_held, sigma,
    ChainLockState,
};
use crate::demands::{chain_contexts, demands, phase_costs, ChainCtx, DelayTimes};
use crate::output::{ConvergenceInfo, ModelNodeReport, ModelReport, ModelTypeReport};
use crate::phases::{Hazards, Phase, TransitionMatrix};

/// What to solve: workload + transaction size on the standard parameters.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Hardware and cost parameters (Table 2 defaults).
    pub params: SystemParams,
    /// User populations.
    pub workload: WorkloadSpec,
    /// `n`: requests per transaction.
    pub n_requests: u32,
}

impl ModelConfig {
    /// Standard two-node testbed configuration.
    pub fn new(workload: WorkloadSpec, n_requests: u32) -> Self {
        ModelConfig {
            params: SystemParams::default(),
            workload,
            n_requests,
        }
    }
}

/// Solver knobs and ablation switches (DESIGN.md §9).
#[derive(Debug, Clone)]
pub struct ModelOptions {
    /// Damping factor λ for state updates (new = λ·computed + (1−λ)·old).
    pub damping: f64,
    /// Convergence tolerance on the damped state.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Use exact MVA when the population lattice is small enough;
    /// otherwise (or when `false`) use Schweitzer–Bard.
    pub exact_mva: bool,
    /// Ablation: ignore deadlocks/rollback entirely (`Pd = 0`), as many
    /// earlier models did.
    pub ignore_deadlocks: bool,
    /// Ablation: treat every lock as exclusive, the assumption the paper
    /// criticises in prior analytical work.
    pub all_locks_exclusive: bool,
    /// Ablation: override the blocking-ratio formula with a constant
    /// (the paper used 1/3).
    pub fixed_br: Option<f64>,
    /// Extension: model the TM server as an extra serialisation center
    /// (the paper ignores it and reports the resulting optimism at n = 4).
    pub model_tm_serialization: bool,
    /// Extension: give the recovery journal its own disk instead of
    /// sharing the database device (the testbed could not — paper §2 calls
    /// the shared disk a bottleneck a real deployment would avoid).
    pub separate_log_disk: bool,
    /// Worker threads for solving the independent per-site MVA networks of
    /// one iteration concurrently (1 = sequential). Sites are solved with
    /// identical arithmetic into disjoint buffers, so the results are
    /// bitwise identical for every value of `threads`; small lattices stay
    /// sequential regardless because thread spawn would dominate.
    pub threads: usize,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            damping: 0.5,
            tol: 1e-9,
            max_iter: 400,
            exact_mva: true,
            ignore_deadlocks: false,
            all_locks_exclusive: false,
            fixed_br: None,
            model_tm_serialization: false,
            separate_log_disk: false,
            threads: 1,
        }
    }
}

/// Mutable per-chain solver state.
#[derive(Debug, Clone, Default)]
struct ChainState {
    pb: f64,
    pd: f64,
    pra: f64,
    r_lw: f64,
    r_rw: f64,
    r_cwc: f64,
    r_cwa: f64,
    /// MVA commit-to-commit cycle time.
    r_cycle: f64,
    /// Successful-execution time.
    r_s: f64,
    /// Throughput (cycles per ms).
    x: f64,
    l_h: f64,
    sigma: f64,
    p_a: f64,
    n_s: f64,
    blocked_frac: f64,
    ios_per_cycle: f64,
    log_ios_per_cycle: f64,
    cpu_demand: f64,
    disk_demand: f64,
    log_demand: f64,
}

/// Opaque snapshot of a converged fixed point, used to seed the solve of a
/// neighboring parameter point ([`Model::solve_warm`]).
///
/// Adjacent sweep points (same workload, next transaction size or
/// population) have nearby fixed points, so starting the iteration from a
/// neighbor's converged state typically cuts the iteration count by a
/// large factor. A snapshot is only compatible with a configuration that
/// produces the same chain structure (same sites and chain types, in the
/// same order); populations and per-request costs may differ — that is the
/// point. Incompatible snapshots are ignored and the solve falls back to a
/// cold start.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// Chain structure this snapshot belongs to.
    keys: Vec<(usize, ChainType)>,
    /// The converged per-chain iteration state.
    st: Vec<ChainState>,
}

/// One site's closed network plus the MVA buffers, built once per solve
/// and reused across all fixed-point iterations: only the demands change
/// between iterations, so the network topology, the lattice-sized scratch
/// table, and the solution buffers persist.
struct SiteSolver {
    /// Indices into `ctxs`/`st` of the chains running at this site, in
    /// chain-id order of `net`.
    site_idx: Vec<usize>,
    net: Network,
    cpu: usize,
    disk: usize,
    log_disk: Option<usize>,
    tm: Option<usize>,
    delay: usize,
    scratch: MvaScratch,
    out: MvaSolution,
}

/// Lattices at or above the exact-MVA cap fall back to Schweitzer–Bard.
const EXACT_LATTICE_MAX: usize = 2_000_000;

/// Minimum per-site lattice size before parallel site solves pay for the
/// thread-spawn overhead.
const PARALLEL_LATTICE_MIN: usize = 4_096;

impl SiteSolver {
    /// Solves this site's network into the held buffers.
    fn run(&mut self, exact_mva: bool) {
        if exact_mva && self.net.lattice_size() <= EXACT_LATTICE_MAX {
            self.net.solve_exact_into(&mut self.scratch, &mut self.out);
        } else {
            self.net
                .solve_approx_into(1e-10, 20_000, &mut self.scratch, &mut self.out);
        }
    }
}

/// The analytical model of the CARAT testbed.
pub struct Model {
    cfg: ModelConfig,
    opts: ModelOptions,
}

impl Model {
    /// Model with default solver options.
    pub fn new(cfg: ModelConfig) -> Self {
        Model {
            cfg,
            opts: ModelOptions::default(),
        }
    }

    /// Model with explicit options (ablations, solver knobs).
    pub fn with_options(cfg: ModelConfig, opts: ModelOptions) -> Self {
        Model { cfg, opts }
    }

    /// Runs the fixed-point iteration and returns the predictions.
    pub fn solve(&self) -> ModelReport {
        self.solve_warm(None).0
    }

    /// Like [`Model::solve`], but optionally seeds the iteration from a
    /// neighboring point's converged state and returns this point's own
    /// converged state for further chaining. `ConvergenceInfo::warm_started`
    /// records whether the seed was actually used (an incompatible or
    /// absent seed falls back to the cold start).
    pub fn solve_warm(&self, warm: Option<&WarmStart>) -> (ModelReport, WarmStart) {
        self.solve_logged(warm, None)
    }

    /// Like [`Model::solve_warm`], but additionally appends one [`IterRow`]
    /// per chain per fixed-point iteration to `log`: the undamped residual
    /// and the post-damping `Pb`, `Pd`, `L_h`, `R_LW`, `R_RW`, `R_CW` —
    /// the trajectory of Eqs. 11–24. The last logged iteration number and
    /// residual equal the returned `ConvergenceInfo` exactly. Passing
    /// `None` is free: the iteration loop does no logging work at all.
    pub fn solve_logged(
        &self,
        warm: Option<&WarmStart>,
        mut log: Option<&mut IterLog>,
    ) -> (ModelReport, WarmStart) {
        let params = &self.cfg.params;
        let ctxs = chain_contexts(params, &self.cfg.workload, self.cfg.n_requests);
        let keys: Vec<(usize, ChainType)> = ctxs.iter().map(|c| (c.site, c.chain)).collect();
        let warm_st = warm.filter(|w| w.keys == keys);
        let mut st: Vec<ChainState> = match warm_st {
            Some(w) => w.st.clone(),
            None => ctxs
                .iter()
                .map(|_| ChainState {
                    n_s: 1.0,
                    sigma: 0.5,
                    ..ChainState::default()
                })
                .collect(),
        };

        let mut iterations = 0;
        let mut converged = false;
        let mut residual = f64::INFINITY;
        let lam = self.opts.damping;
        // (CPU, disk) utilization per site, refreshed by each MVA pass.
        let mut site_util = vec![(0.0f64, 0.0f64); params.sites()];

        // Per-site networks + MVA buffers, built once and reused across
        // iterations (topology and populations are fixed; only demands
        // change), keeping the iteration loop allocation-free.
        let mut solvers: Vec<SiteSolver> = (0..params.sites())
            .map(|site| {
                let site_idx: Vec<usize> =
                    (0..ctxs.len()).filter(|&k| ctxs[k].site == site).collect();
                let mut net = Network::new();
                let cpu = net.add_center("CPU", CenterKind::Queueing);
                let disk = net.add_center("DISK", CenterKind::Queueing);
                let log_disk = if self.opts.separate_log_disk {
                    Some(net.add_center("LOG", CenterKind::Queueing))
                } else {
                    None
                };
                let tm = if self.opts.model_tm_serialization {
                    Some(net.add_center("TM", CenterKind::Queueing))
                } else {
                    None
                };
                let delay = net.add_center("DELAY", CenterKind::Delay);
                for &k in &site_idx {
                    net.add_chain(ctxs[k].chain.label(), ctxs[k].population);
                }
                SiteSolver {
                    site_idx,
                    net,
                    cpu,
                    disk,
                    log_disk,
                    tm,
                    delay,
                    scratch: MvaScratch::default(),
                    out: MvaSolution::empty(),
                }
            })
            .collect();
        let threads = self.opts.threads.max(1).min(solvers.len().max(1));
        let parallel_sites = threads > 1
            && solvers
                .iter()
                .map(|sv| sv.net.lattice_size())
                .max()
                .unwrap_or(0)
                >= PARALLEL_LATTICE_MIN;

        for iter in 0..self.opts.max_iter {
            iterations = iter + 1;

            // --- Phase/visit/demand assembly -------------------------------
            let mut visits = Vec::with_capacity(ctxs.len());
            for (k, ctx) in ctxs.iter().enumerate() {
                let s = &mut st[k];
                let p = (s.pb * s.pd).clamp(0.0, 0.999_999);
                s.sigma = sigma(p, ctx.n_lk.max(1.0));
                let survive_locks = (1.0 - p).powf(ctx.n_lk);
                let survive_remote = match ctx.chain {
                    ChainType::Droc | ChainType::Duc => (1.0 - s.pra).powf(ctx.r),
                    ChainType::Dros | ChainType::Dus => (1.0 - s.pra).powf(ctx.l),
                    _ => 1.0,
                };
                s.p_a = (1.0 - survive_locks * survive_remote).clamp(0.0, 0.95);
                s.n_s = 1.0 / (1.0 - s.p_a);

                let hz = Hazards {
                    pb: s.pb,
                    pd: s.pd,
                    pra: s.pra,
                };
                let m = if ctx.chain.is_slave() {
                    TransitionMatrix::slave(ctx.l, ctx.q, hz)
                } else {
                    TransitionMatrix::local_or_coordinator(ctx.n, ctx.l, ctx.r, ctx.q, hz)
                };
                visits.push(m.visit_counts());
            }

            // --- Per-site MVA ----------------------------------------------
            // Refresh the demands of every site's (pre-built) network.
            for sv in &mut solvers {
                for (chain_id, &k) in sv.site_idx.iter().enumerate() {
                    let ctx = &ctxs[k];
                    let s = &st[k];
                    let costs = phase_costs(params, ctx, s.sigma);
                    let d = demands(
                        params,
                        &visits[k],
                        &costs,
                        &DelayTimes {
                            lw: s.r_lw,
                            rw: s.r_rw,
                            cwc: s.r_cwc,
                            cwa: s.r_cwa,
                        },
                        s.n_s,
                    );
                    sv.net.set_demand(chain_id, sv.cpu, d.cpu);
                    match sv.log_disk {
                        Some(log_c) => {
                            sv.net.set_demand(chain_id, sv.disk, d.disk);
                            sv.net.set_demand(chain_id, log_c, d.log);
                        }
                        None => {
                            // Shared device (the testbed's forced layout).
                            sv.net.set_demand(chain_id, sv.disk, d.disk + d.log);
                        }
                    }
                    sv.net.set_demand(chain_id, sv.delay, d.delay);
                    if let Some(tm) = sv.tm {
                        // Shadow-server approximation of the serialised TM:
                        // all TM-phase CPU plus the forced commit write.
                        let v = &visits[k];
                        let tm_demand = s.n_s
                            * (v.get(Phase::Tm) * costs.cpu[Phase::Tm.idx()]
                                + v.get(Phase::Tc) * costs.cpu[Phase::Tc.idx()]
                                + v.get(Phase::Tcio) * costs.disk[Phase::Tcio.idx()]);
                        sv.net.set_demand(chain_id, tm, tm_demand);
                    }
                    let s = &mut st[k];
                    s.ios_per_cycle = d.ios;
                    s.log_ios_per_cycle = d.log_ios;
                    s.cpu_demand = d.cpu;
                    s.disk_demand = if self.opts.separate_log_disk {
                        d.disk
                    } else {
                        d.disk + d.log
                    };
                    s.log_demand = if self.opts.separate_log_disk {
                        d.log
                    } else {
                        0.0
                    };
                }
            }

            // Sites are independent closed networks: solve them
            // concurrently when allowed and worthwhile. Each solve writes
            // only its own buffers with arithmetic identical to the
            // sequential path, so the results are bitwise equal for any
            // thread count.
            let exact_mva = self.opts.exact_mva;
            if parallel_sites {
                let per = solvers.len().div_ceil(threads);
                std::thread::scope(|scope| {
                    for chunk in solvers.chunks_mut(per) {
                        scope.spawn(move || {
                            for sv in chunk {
                                sv.run(exact_mva);
                            }
                        });
                    }
                });
            } else {
                for sv in &mut solvers {
                    sv.run(exact_mva);
                }
            }

            for (site, sv) in solvers.iter().enumerate() {
                for (pos, &k) in sv.site_idx.iter().enumerate() {
                    let s = &mut st[k];
                    s.x = sv.out.throughput[pos];
                    s.r_cycle = sv.out.response[pos];
                    let think = s.n_s * params.think_time_ms;
                    s.r_s = ((s.r_cycle - think) / (1.0 + (s.n_s - 1.0) * s.sigma)).max(1e-9);
                }

                // Stash site utilizations for the delay updates below.
                site_util[site] = (sv.out.utilization[sv.cpu], sv.out.utilization[sv.disk]);
            }

            // --- Contention updates ----------------------------------------
            let mut new_pb = vec![0.0; ctxs.len()];
            let mut new_pd = vec![0.0; ctxs.len()];
            let mut new_rlw = vec![0.0; ctxs.len()];
            for site in 0..params.sites() {
                let site_idx: Vec<usize> =
                    (0..ctxs.len()).filter(|&k| ctxs[k].site == site).collect();
                // L_h and blocked-time fractions first.
                for &k in &site_idx {
                    let ctx = &ctxs[k];
                    let s = &mut st[k];
                    s.l_h = locks_held(ctx.n_lk, s.sigma, s.p_a, s.r_s, params.think_time_ms);
                    s.blocked_frac = if s.r_cycle > 0.0 {
                        (s.n_s * ctx.n_lk * s.pb * s.r_lw / s.r_cycle).clamp(0.0, 0.9)
                    } else {
                        0.0
                    };
                }
                let states: Vec<ChainLockState> = site_idx
                    .iter()
                    .map(|&k| {
                        let s = &st[k];
                        // B(t): the wait-free part of R_s — what the blocker
                        // actually *does* while holding locks. Both the
                        // lock-wait echo (same site) and the remote-wait echo
                        // (other site's lock waits reflected through RW gaps)
                        // are removed; without this the cross-site R_LW loop
                        // is slowly supercritical and the iteration drifts
                        // into an unphysical thrashing solution. B is anchored
                        // to the pure service content per execution: at least
                        // 1× (can't be faster than service), at most 6×
                        // (bounded queueing inflation at sub-saturation
                        // utilizations).
                        let lw_content = ctxs[k].n_lk * s.pb * s.r_lw;
                        let rw_cw_content =
                            visits[k].get(Phase::Rw) * s.r_rw + visits[k].get(Phase::Cwc) * s.r_cwc;
                        let service = (s.cpu_demand + s.disk_demand) / s.n_s;
                        let useful = (s.r_s - lw_content - rw_cw_content)
                            .clamp(service, 6.0 * service.max(1e-9));
                        ChainLockState {
                            chain: ctxs[k].chain,
                            population: ctxs[k].population as f64,
                            l_h: s.l_h,
                            n_lk: ctxs[k].n_lk,
                            blocked_frac: s.blocked_frac,
                            r_s: s.r_s,
                            useful,
                            pb: s.pb,
                            pd: s.pd,
                        }
                    })
                    .collect();
                let rlw_site = lock_wait_times_consistent(
                    &states,
                    self.opts.all_locks_exclusive,
                    self.opts.fixed_br,
                );
                for (pos, &k) in site_idx.iter().enumerate() {
                    new_pb[k] = blocking_probability(
                        ctxs[k].chain,
                        &states,
                        params.effective_granules(),
                        self.opts.all_locks_exclusive,
                    );
                    new_pd[k] = if self.opts.ignore_deadlocks {
                        0.0
                    } else {
                        deadlock_probability(pos, &states, self.opts.all_locks_exclusive)
                    };
                    new_rlw[k] = rlw_site[pos];
                }
            }

            // --- Distributed delays (Eqs. 21–24 + CW) ----------------------
            let alpha = params.comm_delay_ms;
            let mut new_rrw = vec![0.0; ctxs.len()];
            let mut new_cwc = vec![0.0; ctxs.len()];
            let mut new_cwa = vec![0.0; ctxs.len()];
            let mut new_pra = vec![0.0; ctxs.len()];
            for k in 0..ctxs.len() {
                let ctx = &ctxs[k];
                match ctx.chain {
                    ChainType::Droc | ChainType::Duc => {
                        let sc = ctx.chain.counterpart().expect("coordinator");
                        let mut active_sum = 0.0;
                        let mut commit_max: f64 = 0.0;
                        let mut pra_survive = 1.0;
                        let mut n_slaves = 0.0;
                        for (j, sl) in ctxs.iter().enumerate() {
                            if sl.chain != sc || sl.site == ctx.site {
                                continue;
                            }
                            let ss = &st[j];
                            let (u_cpu, u_disk) = site_util[sl.site];
                            let infl_cpu = (1.0 / (1.0 - u_cpu.min(0.95))).min(5.0);
                            let infl_disk = (1.0 / (1.0 - u_disk.min(0.95))).min(5.0);
                            let commit_part = params.basic.tc_cpu(sc) * infl_cpu
                                + params.basic.commit_ios(sc) as f64
                                    * params.nodes[sl.site].disk_io_ms
                                    * infl_disk;
                            // Slave time actively serving one remote request:
                            // its successful execution minus its own waits
                            // and commit processing, per request.
                            let active =
                                ((ss.r_s - visits_rw_estimate(sl) * ss.r_rw - commit_part) / sl.l)
                                    .max(0.0);
                            active_sum += active;
                            commit_max = commit_max.max(commit_part);
                            pra_survive *= (1.0 - ss.pb * ss.pd).powf(sl.q);
                            n_slaves += 1.0;
                        }
                        if n_slaves > 0.0 {
                            new_rrw[k] = 2.0 * alpha + active_sum / n_slaves;
                            new_cwc[k] = 4.0 * alpha + commit_max;
                            new_cwa[k] = 2.0 * alpha;
                            new_pra[k] = 1.0 - pra_survive;
                        }
                    }
                    ChainType::Dros | ChainType::Dus => {
                        let cc = ctx.chain.counterpart().expect("slave");
                        // The coordinator(s) this slave serves live at the
                        // other sites.
                        let mut gap_sum = 0.0;
                        let mut cwc_max: f64 = 0.0;
                        let mut pra_survive = 1.0;
                        let mut n_coord = 0.0;
                        for (j, co) in ctxs.iter().enumerate() {
                            if co.chain != cc || co.site == ctx.site {
                                continue;
                            }
                            let cs = &st[j];
                            let (u_cpu, u_disk) = site_util[co.site];
                            let infl_cpu = (1.0 / (1.0 - u_cpu.min(0.95))).min(5.0);
                            let infl_disk = (1.0 / (1.0 - u_disk.min(0.95))).min(5.0);
                            let decision = params.basic.tc_cpu(cc) / 2.0 * infl_cpu
                                + params.basic.commit_ios(cc) as f64
                                    * params.nodes[co.site].disk_io_ms
                                    * infl_disk;
                            let gap =
                                ((cs.r_s - co.r * cs.r_rw - cs.r_cwc) / co.r.max(1.0)).max(0.0);
                            gap_sum += gap + 2.0 * alpha;
                            cwc_max = cwc_max.max(2.0 * alpha + decision);
                            // Coordinator-side aborts per slave wait: the
                            // coordinator acquires N_lk(c)/r locks per gap.
                            pra_survive *= (1.0 - cs.pb * cs.pd).powf(co.n_lk / co.r.max(1.0));
                            n_coord += 1.0;
                        }
                        if n_coord > 0.0 {
                            new_rrw[k] = gap_sum / n_coord;
                            new_cwc[k] = cwc_max;
                            new_cwa[k] = 2.0 * alpha;
                            new_pra[k] = 1.0 - pra_survive;
                        }
                    }
                    _ => {}
                }
            }

            // --- Damped state update + convergence check -------------------
            let mut delta: f64 = 0.0;
            for k in 0..ctxs.len() {
                let s = &mut st[k];
                let mut upd = |old: &mut f64, new: f64| {
                    // Judge convergence on the *undamped* step. The damped
                    // move `|v − old| = λ·|new − old|` under-states the
                    // distance from the fixed point by the damping factor,
                    // which declared convergence a factor 1/λ too early.
                    delta = delta.max((new - *old).abs() / (1.0 + new.abs()));
                    *old = lam * new + (1.0 - lam) * *old;
                };
                upd(&mut s.pb, new_pb[k]);
                upd(&mut s.pd, new_pd[k]);
                upd(&mut s.r_lw, new_rlw[k]);
                upd(&mut s.r_rw, new_rrw[k]);
                upd(&mut s.r_cwc, new_cwc[k]);
                upd(&mut s.r_cwa, new_cwa[k]);
                upd(&mut s.pra, new_pra[k]);
            }
            residual = delta;
            if let Some(log) = log.as_deref_mut() {
                // Post-damping state: what the next iteration starts from
                // (and, on the final iteration, exactly the converged state
                // the report is packaged from). `l_h` is this iteration's
                // contention-section value; the residual column repeats the
                // iteration-wide undamped max-norm step.
                for (k, ctx) in ctxs.iter().enumerate() {
                    let s = &st[k];
                    log.push(IterRow {
                        iter: iterations,
                        site: ctx.site,
                        chain: ctx.chain.label().to_string(),
                        residual: delta,
                        pb: s.pb,
                        pd: s.pd,
                        l_h: s.l_h,
                        r_lw: s.r_lw,
                        r_rw: s.r_rw,
                        r_cw: s.r_cwc,
                    });
                }
            }
            if delta < self.opts.tol {
                converged = true;
                break;
            }
        }

        let report = self.package(
            &ctxs,
            &st,
            ConvergenceInfo {
                converged,
                iterations,
                residual,
                warm_started: warm_st.is_some(),
            },
        );
        (report, WarmStart { keys, st })
    }

    fn package(
        &self,
        ctxs: &[ChainCtx],
        st: &[ChainState],
        convergence: ConvergenceInfo,
    ) -> ModelReport {
        let params = &self.cfg.params;
        let mut nodes = Vec::new();
        for site in 0..params.sites() {
            let mut per_type: BTreeMap<TxType, ModelTypeReport> = BTreeMap::new();
            let mut per_chain = Vec::new();
            let mut tx_per_s = 0.0;
            let mut records_per_s = 0.0;
            let mut cpu_u = 0.0;
            let mut disk_u = 0.0;
            let mut log_u = 0.0;
            let mut dio = 0.0;
            for (k, ctx) in ctxs.iter().enumerate() {
                if ctx.site != site {
                    continue;
                }
                let s = &st[k];
                // MVA throughput is already the chain total (all N(t, i)
                // customers), in cycles per ms.
                cpu_u += s.x * s.cpu_demand;
                disk_u += s.x * s.disk_demand;
                log_u += s.x * s.log_demand;
                dio += s.x * (s.ios_per_cycle + s.log_ios_per_cycle) * 1000.0;

                // Final-state phase decomposition (service content per
                // commit cycle) for comparison with the simulator's
                // measured residence.
                let hz = Hazards {
                    pb: s.pb,
                    pd: s.pd,
                    pra: s.pra,
                };
                let m = if ctx.chain.is_slave() {
                    TransitionMatrix::slave(ctx.l, ctx.q, hz)
                } else {
                    TransitionMatrix::local_or_coordinator(ctx.n, ctx.l, ctx.r, ctx.q, hz)
                };
                let v = m.visit_counts();
                let costs = phase_costs(params, ctx, s.sigma);
                let mut phase_ms = std::collections::BTreeMap::new();
                for ph in Phase::ALL {
                    let service = costs.cpu[ph.idx()] + costs.disk[ph.idx()] + costs.log[ph.idx()];
                    let delay = match ph {
                        Phase::Lw => s.r_lw,
                        Phase::Rw => s.r_rw,
                        Phase::Cwc => s.r_cwc,
                        Phase::Cwa => s.r_cwa,
                        Phase::Ut => params.think_time_ms,
                        _ => 0.0,
                    };
                    let total = s.n_s * v.get(ph) * (service + delay);
                    if total > 1e-9 {
                        phase_ms.insert(ph.label(), total);
                    }
                }

                let rep = ModelTypeReport {
                    phase_ms,
                    xput_per_s: s.x * 1000.0,
                    response_ms: s.r_cycle,
                    n_s: s.n_s,
                    pb: s.pb,
                    pd: s.pd,
                    p_a: s.p_a,
                    l_h: s.l_h,
                    r_lw_ms: s.r_lw,
                };
                per_chain.push((ctx.chain, rep.clone()));
                if !ctx.chain.is_slave() {
                    // User-visible throughput: local chains and coordinators
                    // are homed here.
                    tx_per_s += rep.xput_per_s;
                    records_per_s += rep.xput_per_s * ctx.n * params.records_per_request as f64;
                    per_type.insert(ctx.chain.user_type(), rep);
                }
            }
            nodes.push(ModelNodeReport {
                name: params.nodes[site].name.clone(),
                cpu_util: cpu_u,
                disk_util: disk_u,
                log_disk_util: log_u,
                dio_per_s: dio,
                tx_per_s,
                records_per_s,
                per_type,
                per_chain,
            });
        }
        ModelReport { nodes, convergence }
    }
}

/// Estimated RW visits per slave execution (= its request count).
fn visits_rw_estimate(ctx: &ChainCtx) -> f64 {
    ctx.l
}
