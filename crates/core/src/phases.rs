//! Transaction phases, the Table 1 transition matrices, and visit counts.

use carat_qnet::solve_dense_in_place;

/// The transaction phases of the Site Processing Model (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// User think wait between transactions.
    Ut,
    /// Transaction initialization (TBEGIN/DBOPEN processing).
    Init,
    /// User application processing.
    U,
    /// TM server message processing.
    Tm,
    /// DM server processing between lock requests.
    Dm,
    /// Lock request processing (incl. local deadlock detection).
    Lr,
    /// DM disk I/O burst.
    Dmio,
    /// Lock wait (blocked on a conflict).
    Lw,
    /// Remote request wait.
    Rw,
    /// Commit processing (2PC CPU).
    Tc,
    /// Abort (rollback) processing.
    Ta,
    /// Commit log disk I/O.
    Tcio,
    /// Rollback disk I/O.
    Taio,
    /// Two-phase-commit wait, committing branch.
    Cwc,
    /// Two-phase-commit wait, aborting branch.
    Cwa,
    /// Unlock processing (release all locks).
    Ul,
}

impl Phase {
    /// All phases; index order fixes the matrix layout.
    pub const ALL: [Phase; 16] = [
        Phase::Ut,
        Phase::Init,
        Phase::U,
        Phase::Tm,
        Phase::Dm,
        Phase::Lr,
        Phase::Dmio,
        Phase::Lw,
        Phase::Rw,
        Phase::Tc,
        Phase::Ta,
        Phase::Tcio,
        Phase::Taio,
        Phase::Cwc,
        Phase::Cwa,
        Phase::Ul,
    ];

    /// Number of phases.
    pub const COUNT: usize = 16;

    /// Index of this phase in [`Phase::ALL`].
    pub fn idx(self) -> usize {
        Phase::ALL
            .iter()
            .position(|&p| p == self)
            .expect("phase in ALL")
    }

    /// Phases whose service includes CPU time (`P_cpu` of paper §5.3).
    /// DMIO appears in both sets: issuing the I/O costs CPU (Table 2's
    /// `R_DMIO^(cpu)`) in addition to the disk transfer.
    pub const CPU: [Phase; 9] = [
        Phase::Init,
        Phase::U,
        Phase::Tm,
        Phase::Dm,
        Phase::Lr,
        Phase::Dmio,
        Phase::Tc,
        Phase::Ta,
        Phase::Ul,
    ];

    /// Phases whose service is disk time (`P_disk`).
    pub const DISK: [Phase; 3] = [Phase::Dmio, Phase::Tcio, Phase::Taio];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Ut => "UT",
            Phase::Init => "INIT",
            Phase::U => "U",
            Phase::Tm => "TM",
            Phase::Dm => "DM",
            Phase::Lr => "LR",
            Phase::Dmio => "DMIO",
            Phase::Lw => "LW",
            Phase::Rw => "RW",
            Phase::Tc => "TC",
            Phase::Ta => "TA",
            Phase::Tcio => "TCIO",
            Phase::Taio => "TAIO",
            Phase::Cwc => "CWC",
            Phase::Cwa => "CWA",
            Phase::Ul => "UL",
        }
    }
}

/// Per-execution phase-transition probabilities (one row per phase).
#[derive(Debug, Clone)]
pub struct TransitionMatrix {
    /// `p[from][to]`, indexed by [`Phase::idx`].
    pub p: [[f64; Phase::COUNT]; Phase::COUNT],
}

/// Probabilistic inputs to a transition matrix.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hazards {
    /// `Pb`: probability a lock request blocks.
    pub pb: f64,
    /// `Pd`: probability a blocked request dies in a deadlock.
    pub pd: f64,
    /// `Pra`: probability a remote-wait ends in a remote abort.
    pub pra: f64,
}

impl TransitionMatrix {
    fn empty() -> Self {
        TransitionMatrix {
            p: [[0.0; Phase::COUNT]; Phase::COUNT],
        }
    }

    fn set(&mut self, from: Phase, to: Phase, prob: f64) {
        debug_assert!((0.0..=1.0 + 1e-12).contains(&prob), "bad prob {prob}");
        self.p[from.idx()][to.idx()] = prob;
    }

    /// Table 1 of the paper: local transactions and distributed
    /// coordinators.
    ///
    /// * `n` — total requests; `l` local, `r` remote (`n = l + r`);
    /// * `q` — mean granules (disk I/Os, lock requests) per request;
    /// * `h` — blocking/deadlock/remote-abort probabilities.
    pub fn local_or_coordinator(n: f64, l: f64, r: f64, q: f64, h: Hazards) -> Self {
        assert!((n - (l + r)).abs() < 1e-9, "n = l + r violated");
        assert!(n >= 1.0 && q > 0.0);
        let c = 2.0 * n + 1.0;
        let mut m = Self::empty();
        m.set(Phase::Ut, Phase::Init, 1.0);
        m.set(Phase::Init, Phase::U, 1.0);
        m.set(Phase::U, Phase::Tm, 1.0);
        m.set(Phase::Tm, Phase::U, n / c);
        m.set(Phase::Tm, Phase::Dm, l / c);
        m.set(Phase::Tm, Phase::Rw, r / c);
        m.set(Phase::Tm, Phase::Tc, 1.0 / c);
        m.set(Phase::Dm, Phase::Tm, 1.0 / (q + 1.0));
        m.set(Phase::Dm, Phase::Lr, q / (q + 1.0));
        m.set(Phase::Lr, Phase::Dmio, 1.0 - h.pb);
        m.set(Phase::Lr, Phase::Lw, h.pb);
        m.set(Phase::Dmio, Phase::Dm, 1.0);
        m.set(Phase::Lw, Phase::Dmio, 1.0 - h.pd);
        m.set(Phase::Lw, Phase::Ta, h.pd);
        m.set(Phase::Rw, Phase::Tm, 1.0 - h.pra);
        m.set(Phase::Rw, Phase::Ta, h.pra);
        m.set(Phase::Tc, Phase::Cwc, 1.0);
        m.set(Phase::Ta, Phase::Cwa, 1.0);
        m.set(Phase::Tcio, Phase::Ul, 1.0);
        m.set(Phase::Taio, Phase::Ul, 1.0);
        m.set(Phase::Cwc, Phase::Tcio, 1.0);
        m.set(Phase::Cwa, Phase::Taio, 1.0);
        m.set(Phase::Ul, Phase::Ut, 1.0);
        m
    }

    /// The slave-chain analogue (paper §5.1 sketches it; DESIGN.md §6 gives
    /// the derivation): a slave executes `l ≥ 1` requests delivered by
    /// REMDO messages; it has no INIT or U phases, enters TM directly from
    /// UT, and between requests sits in RW awaiting its coordinator. After
    /// the last request the RW wait ends with the PREPARE message (→ TC) or
    /// a remote abort (→ TA).
    pub fn slave(l: f64, q: f64, h: Hazards) -> Self {
        assert!(l >= 1.0 && q > 0.0);
        let mut m = Self::empty();
        m.set(Phase::Ut, Phase::Tm, 1.0);
        m.set(Phase::Tm, Phase::Dm, 0.5);
        m.set(Phase::Tm, Phase::Rw, 0.5);
        m.set(Phase::Dm, Phase::Tm, 1.0 / (q + 1.0));
        m.set(Phase::Dm, Phase::Lr, q / (q + 1.0));
        m.set(Phase::Lr, Phase::Dmio, 1.0 - h.pb);
        m.set(Phase::Lr, Phase::Lw, h.pb);
        m.set(Phase::Dmio, Phase::Dm, 1.0);
        m.set(Phase::Lw, Phase::Dmio, 1.0 - h.pd);
        m.set(Phase::Lw, Phase::Ta, h.pd);
        m.set(Phase::Rw, Phase::Tm, (1.0 - h.pra) * (l - 1.0) / l);
        m.set(Phase::Rw, Phase::Tc, (1.0 - h.pra) / l);
        m.set(Phase::Rw, Phase::Ta, h.pra);
        m.set(Phase::Tc, Phase::Cwc, 1.0);
        m.set(Phase::Ta, Phase::Cwa, 1.0);
        m.set(Phase::Tcio, Phase::Ul, 1.0);
        m.set(Phase::Taio, Phase::Ul, 1.0);
        m.set(Phase::Cwc, Phase::Tcio, 1.0);
        m.set(Phase::Cwa, Phase::Taio, 1.0);
        m.set(Phase::Ul, Phase::Ut, 1.0);
        m
    }

    /// Row sums (should be 1 for every phase that can be left).
    pub fn row_sum(&self, from: Phase) -> f64 {
        self.p[from.idx()].iter().sum()
    }

    /// Solves the traffic equations (paper Eq. 1) for the expected number
    /// of visits to each phase per execution, normalised to one UT visit
    /// per execution.
    pub fn visit_counts(&self) -> VisitCounts {
        let mut scratch = TrafficScratch::default();
        let mut out = VisitCounts {
            v: [0.0; Phase::COUNT],
        };
        self.visit_counts_into(&mut scratch, &mut out);
        out
    }

    /// Allocation-free variant of [`TransitionMatrix::visit_counts`]: the
    /// 16×16 system matrix and right-hand side live in `scratch` so the
    /// per-iteration traffic-equation solve in the fixed-point loop does
    /// not allocate. Bitwise-identical to `visit_counts` (same assembly,
    /// same elimination).
    pub fn visit_counts_into(&self, scratch: &mut TrafficScratch, out: &mut VisitCounts) {
        // V = V·P with V[UT] = 1  ⇔  (Pᵀ − I)V = 0, replace the UT row by
        // V[UT] = 1.
        let n = Phase::COUNT;
        let ut = Phase::Ut.idx();
        let a = &mut scratch.a;
        let b = &mut scratch.b;
        for row in 0..n {
            if row == ut {
                for col in 0..n {
                    a[row * n + col] = 0.0;
                }
                a[row * n + row] = 1.0;
                b[row] = 1.0;
                continue;
            }
            for col in 0..n {
                a[row * n + col] = self.p[col][row]; // Pᵀ
            }
            a[row * n + row] -= 1.0;
            b[row] = 0.0;
        }
        solve_dense_in_place(a, b).expect("traffic equations are nonsingular");
        out.v.copy_from_slice(b);
    }
}

/// Reusable buffers for [`TransitionMatrix::visit_counts_into`].
#[derive(Debug, Clone)]
pub struct TrafficScratch {
    a: Vec<f64>,
    b: Vec<f64>,
}

impl Default for TrafficScratch {
    fn default() -> Self {
        TrafficScratch {
            a: vec![0.0; Phase::COUNT * Phase::COUNT],
            b: vec![0.0; Phase::COUNT],
        }
    }
}

/// Expected visits to each phase per transaction execution.
#[derive(Debug, Clone)]
pub struct VisitCounts {
    v: [f64; Phase::COUNT],
}

impl VisitCounts {
    /// All-zero visit counts — an output buffer for
    /// [`TransitionMatrix::visit_counts_into`].
    pub fn zero() -> Self {
        VisitCounts {
            v: [0.0; Phase::COUNT],
        }
    }

    /// Visits to `phase` per execution.
    pub fn get(&self, phase: Phase) -> f64 {
        self.v[phase.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_hazards() -> Hazards {
        Hazards::default()
    }

    #[test]
    fn rows_are_stochastic() {
        let m = TransitionMatrix::local_or_coordinator(
            8.0,
            4.0,
            4.0,
            3.9,
            Hazards {
                pb: 0.1,
                pd: 0.05,
                pra: 0.02,
            },
        );
        for ph in Phase::ALL {
            let s = m.row_sum(ph);
            assert!((s - 1.0).abs() < 1e-12, "{ph:?}: {s}");
        }
        let m = TransitionMatrix::slave(
            4.0,
            3.9,
            Hazards {
                pb: 0.1,
                pd: 0.05,
                pra: 0.02,
            },
        );
        for ph in [
            Phase::Ut,
            Phase::Tm,
            Phase::Dm,
            Phase::Lr,
            Phase::Rw,
            Phase::Lw,
        ] {
            assert!((m.row_sum(ph) - 1.0).abs() < 1e-12, "{ph:?}");
        }
    }

    #[test]
    fn local_visit_counts_match_paper_identities() {
        // Without hazards: V_TM = 2n+1, V_LR = V_DMIO = n·q, V_TC = 1.
        let (n, q) = (8.0, 3.9);
        let m = TransitionMatrix::local_or_coordinator(n, n, 0.0, q, no_hazards());
        let v = m.visit_counts();
        assert!((v.get(Phase::Tm) - (2.0 * n + 1.0)).abs() < 1e-9);
        assert!((v.get(Phase::Lr) - n * q).abs() < 1e-9);
        assert!((v.get(Phase::Dmio) - n * q).abs() < 1e-9);
        assert!((v.get(Phase::Tc) - 1.0).abs() < 1e-9);
        assert!((v.get(Phase::U) - (n + 1.0)).abs() < 1e-9);
        assert!((v.get(Phase::Lw)).abs() < 1e-12);
        assert!((v.get(Phase::Ta)).abs() < 1e-12);
        assert!((v.get(Phase::Ul) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coordinator_splits_dm_and_rw() {
        let (n, l, r, q) = (8.0, 4.0, 4.0, 3.9);
        let m = TransitionMatrix::local_or_coordinator(n, l, r, q, no_hazards());
        let v = m.visit_counts();
        assert!(
            (v.get(Phase::Rw) - r).abs() < 1e-9,
            "one RW per remote request"
        );
        assert!(
            (v.get(Phase::Lr) - l * q).abs() < 1e-9,
            "locks only for local requests"
        );
        assert!((v.get(Phase::Tm) - (2.0 * n + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn slave_visit_counts() {
        let (l, q) = (4.0, 3.9);
        let m = TransitionMatrix::slave(l, q, no_hazards());
        let v = m.visit_counts();
        assert!((v.get(Phase::Tm) - 2.0 * l).abs() < 1e-9);
        assert!((v.get(Phase::Rw) - l).abs() < 1e-9);
        assert!((v.get(Phase::Lr) - l * q).abs() < 1e-9);
        assert!((v.get(Phase::Tc) - 1.0).abs() < 1e-9);
        assert!((v.get(Phase::Init)).abs() < 1e-12, "slaves have no INIT");
        assert!((v.get(Phase::U)).abs() < 1e-12, "slaves have no U");
    }

    #[test]
    fn hazards_create_abort_flow() {
        let (n, q) = (8.0, 3.9);
        let h = Hazards {
            pb: 0.2,
            pd: 0.1,
            pra: 0.0,
        };
        let m = TransitionMatrix::local_or_coordinator(n, n, 0.0, q, h);
        let v = m.visit_counts();
        // Executions end in either commit or abort: V_TC + V_TA = 1.
        assert!((v.get(Phase::Tc) + v.get(Phase::Ta) - 1.0).abs() < 1e-9);
        assert!(v.get(Phase::Ta) > 0.0);
        assert!(v.get(Phase::Lw) > 0.0);
        // With aborts, fewer than n·q lock requests complete per execution.
        assert!(v.get(Phase::Lr) < n * q);
        // Flow balance: V_LW = Pb · V_LR.
        assert!((v.get(Phase::Lw) - h.pb * v.get(Phase::Lr)).abs() < 1e-9);
        // V_TA = Pd · V_LW.
        assert!((v.get(Phase::Ta) - h.pd * v.get(Phase::Lw)).abs() < 1e-9);
    }

    #[test]
    fn visit_counts_into_reuse_is_bitwise_identical() {
        let mut scratch = TrafficScratch::default();
        let mut out = VisitCounts {
            v: [0.0; Phase::COUNT],
        };
        for pb in [0.0, 0.15, 0.6] {
            let m = TransitionMatrix::local_or_coordinator(
                6.0,
                4.0,
                2.0,
                3.3,
                Hazards {
                    pb,
                    pd: 0.2,
                    pra: 0.05,
                },
            );
            let fresh = m.visit_counts();
            m.visit_counts_into(&mut scratch, &mut out);
            assert_eq!(fresh.v, out.v, "pb={pb}");
        }
    }

    #[test]
    fn ul_is_always_reached_once() {
        for pb in [0.0, 0.3, 0.8] {
            let m = TransitionMatrix::local_or_coordinator(
                4.0,
                2.0,
                2.0,
                3.0,
                Hazards {
                    pb,
                    pd: 0.5,
                    pra: 0.1,
                },
            );
            let v = m.visit_counts();
            assert!((v.get(Phase::Ul) - 1.0).abs() < 1e-9, "pb={pb}");
        }
    }
}
