//! The concurrency-control submodel: locks held, blocking, deadlock
//! (paper §5.4 and DESIGN.md §6).

use carat_workload::ChainType;

/// `E[Y]`: expected locks held at the moment of an abort (paper Eq. 11).
///
/// `Y` is truncated-geometric on `0..n_lk − 1` with per-lock hazard
/// `p = Pb·Pd`:
///
/// ```text
/// P[Y = i] ∝ (1 − p)^i · p,   E[Y] = (1−p)/p − n_lk(1−p)^n_lk / (1 − (1−p)^n_lk)
/// ```
///
/// As `p → 0` this tends to the uniform mean `(n_lk − 1)/2`.
///
/// The textbook form subtracts two `O(1/p)` terms that agree to leading
/// order, so evaluating it literally loses all significant digits for small
/// `p`. With `u = −n_lk·ln(1−p)` (so `(1−p)^n_lk = e^(−u)`) it rewrites as
/// `(1−p)/p − n_lk/(e^u − 1)`, computed via `ln_1p`/`exp_m1`; below
/// `u = 1e-4` even that cancels catastrophically, so the series expansion
/// around the uniform mean takes over:
///
/// ```text
/// E[Y] = (n−1)/2 − (n²−1)·p/12 − (n²−1)·p²/24 + O(n⁴p³)
/// ```
///
/// Both branches agree to ≈ 1e-11 relative at the switch point, so the
/// function is continuous and monotone over the whole domain (see
/// `expected_locks_small_p_stability`).
pub fn expected_locks_at_abort(p: f64, n_lk: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "hazard out of range: {p}");
    assert!(n_lk >= 1.0);
    let u = -n_lk * (-p).ln_1p();
    if u < 1e-4 {
        return (n_lk - 1.0) / 2.0 - (n_lk * n_lk - 1.0) * p / 12.0 * (1.0 + p / 2.0);
    }
    (1.0 - p) / p - n_lk / u.exp_m1()
}

/// `σ = E[Y]/N_lk` (paper §5.4.1).
pub fn sigma(p: f64, n_lk: f64) -> f64 {
    (expected_locks_at_abort(p, n_lk) / n_lk).clamp(0.0, 1.0)
}

/// `L_h`: time-average locks held by one transaction over its life cycle
/// (paper Eq. 14), with `R_f = σ·R_s`:
///
/// ```text
/// L_h = (N_lk / 2) · [1 − (1 − σ²)·P_a] · R_s
///       ─────────────────────────────────────
///        R_UT + P_a·R_f + (1 − P_a)·R_s
/// ```
pub fn locks_held(n_lk: f64, sig: f64, p_a: f64, r_s: f64, r_ut: f64) -> f64 {
    if r_s <= 0.0 {
        return 0.0;
    }
    let r_f = sig * r_s;
    let numer = (n_lk / 2.0) * (1.0 - (1.0 - sig * sig) * p_a) * r_s;
    let denom = r_ut + p_a * r_f + (1.0 - p_a) * r_s;
    (numer / denom).max(0.0)
}

/// Per-chain state the contention equations consume.
#[derive(Debug, Clone, Copy)]
pub struct ChainLockState {
    /// Chain type (decides lock modes: update chains hold exclusive locks).
    pub chain: ChainType,
    /// `N(t, i)`: population at the site.
    pub population: f64,
    /// `L_h(t, i)`: time-average locks held per transaction.
    pub l_h: f64,
    /// `N_lk(t)`: locks requested per execution at this site.
    pub n_lk: f64,
    /// Fraction of time one transaction of this chain spends lock-blocked.
    pub blocked_frac: f64,
    /// `R_s(t, i)`: mean successful execution time.
    pub r_s: f64,
    /// `B(t, i)`: the lock-wait-free ("useful") part of `R_s`.
    pub useful: f64,
    /// `Pb(t, i)`: per-request blocking probability.
    pub pb: f64,
    /// `Pd(t, i)`: deadlock-victim probability given blocked.
    pub pd: f64,
}

/// `Pb(t, i)` (paper Eq. 15), mode-aware: a shared request is blocked only
/// by exclusively-held granules; an exclusive request by any held granule.
/// A transaction never blocks on its own locks.
///
/// `all_exclusive` reproduces the "previous analytical models" assumption
/// the paper criticises (every lock exclusive) for the ablation study.
pub fn blocking_probability(
    me: ChainType,
    chains: &[ChainLockState],
    n_granules: f64,
    all_exclusive: bool,
) -> f64 {
    let mut occupied = 0.0;
    for c in chains {
        if !(all_exclusive || c.chain.is_update() || me.is_update()) {
            continue; // reader vs reader never conflicts
        }
        let instances = if c.chain == me {
            (c.population - 1.0).max(0.0)
        } else {
            c.population
        };
        occupied += instances * c.l_h;
    }
    (occupied / n_granules).clamp(0.0, 0.999)
}

/// `PB(t, s, i)` (paper Eq. 17), mode-aware: given that a lock request of a
/// type-`t` transaction is blocked, the probability the blocker is of type
/// `s`. Returned as a distribution over `chains` (summing to 1 when any
/// conflict is possible).
pub fn blocked_by_distribution(
    me: ChainType,
    chains: &[ChainLockState],
    all_exclusive: bool,
) -> Vec<f64> {
    let mut out = vec![0.0; chains.len()];
    blocked_by_distribution_into(me, chains, all_exclusive, &mut out);
    out
}

/// Allocation-free variant of [`blocked_by_distribution`]: writes the
/// distribution into `out` (length = `chains.len()`). Bitwise-identical
/// weights, sum, and normalisation.
pub fn blocked_by_distribution_into(
    me: ChainType,
    chains: &[ChainLockState],
    all_exclusive: bool,
    out: &mut [f64],
) {
    assert_eq!(out.len(), chains.len(), "distribution buffer length");
    let mut total = 0.0;
    for (w, c) in out.iter_mut().zip(chains) {
        *w = if !(all_exclusive || c.chain.is_update() || me.is_update()) {
            0.0
        } else {
            let instances = if c.chain == me {
                (c.population - 1.0).max(0.0)
            } else {
                c.population
            };
            instances * c.l_h
        };
        total += *w;
    }
    if total <= 0.0 {
        out.fill(0.0);
    } else {
        for w in out.iter_mut() {
            *w /= total;
        }
    }
}

/// `Pd(t, i)`: probability a blocked type-`t` request closes a two-cycle
/// deadlock and is chosen as the victim (DESIGN.md §6; the paper defers the
/// derivation to \[JENQ86\] but states only two-cycles are considered).
///
/// CARAT searches the wait-for graph at lock-request time, so the requester
/// that closes a cycle is the victim. Given `t` blocks on a type-`s`
/// transaction (probability `PB(t, s, i)`), a two-cycle exists iff that
/// `s`-transaction is *currently blocked* (probability = its blocked time
/// fraction) *on a granule held by the specific `t` asking* (probability =
/// `t`'s conflicting held locks over all locks conflicting with `s`'s
/// request).
pub fn deadlock_probability(me_idx: usize, chains: &[ChainLockState], all_exclusive: bool) -> f64 {
    let mut pb_dist = vec![0.0; chains.len()];
    deadlock_probability_scratch(me_idx, chains, all_exclusive, &mut pb_dist)
}

/// Allocation-free variant of [`deadlock_probability`]: the blocked-by
/// distribution is computed into the caller's `pb_dist` buffer (resized as
/// needed). Bitwise-identical result.
pub fn deadlock_probability_scratch(
    me_idx: usize,
    chains: &[ChainLockState],
    all_exclusive: bool,
    pb_dist: &mut Vec<f64>,
) -> f64 {
    let me = chains[me_idx].chain;
    pb_dist.clear();
    pb_dist.resize(chains.len(), 0.0);
    blocked_by_distribution_into(me, chains, all_exclusive, pb_dist);
    let mut pd = 0.0;
    for (s_idx, s) in chains.iter().enumerate() {
        if pb_dist[s_idx] == 0.0 || s.blocked_frac <= 0.0 {
            continue;
        }
        // Probability that the granule s waits for is held by the specific
        // t-instance now asking: t's conflicting locks over everything that
        // can conflict with s's request (excluding s itself).
        let conflicts_with_s = |c: &ChainLockState| -> bool {
            all_exclusive || c.chain.is_update() || s.chain.is_update()
        };
        if !conflicts_with_s(&chains[me_idx]) {
            continue;
        }
        let mut denom = 0.0;
        for (r_idx, r) in chains.iter().enumerate() {
            if !conflicts_with_s(r) {
                continue;
            }
            let instances = if r_idx == s_idx {
                (r.population - 1.0).max(0.0)
            } else {
                r.population
            };
            denom += instances * r.l_h;
        }
        if denom <= 0.0 {
            continue;
        }
        let held_by_me = chains[me_idx].l_h / denom;
        pd += pb_dist[s_idx] * s.blocked_frac * held_by_me.min(1.0);
    }
    pd.clamp(0.0, 0.95)
}

/// `BR(t)`: blocking ratio (paper Eq. 19) — the fraction of a blocker's
/// execution time a blocked request waits on average; ≈ 1/3 and validated
/// as 0.23–0.41 in the testbed.
pub fn blocking_ratio(n_lk: f64) -> f64 {
    assert!(n_lk > 0.0);
    (2.0 * n_lk + 1.0) / (6.0 * n_lk)
}

/// `RLT(s, i)` (paper Eq. 18) and `R_LW(t, i)` (paper Eq. 20): mean lock
/// wait per blocked request of chain `me`, computed by simple relaxation
/// against the blockers' *current* response times.
///
/// `fixed_br` overrides the blocking-ratio formula (ablation: the paper
/// itself used the constant 1/3).
///
/// NOTE: at high contention (`N_lk·Pb·BR > 1`) iterating this relation
/// diverges because a blocker's `R_s` contains its own lock waits; use
/// [`lock_wait_times_consistent`] inside fixed-point solvers.
pub fn lock_wait_time(
    me: ChainType,
    chains: &[ChainLockState],
    all_exclusive: bool,
    fixed_br: Option<f64>,
) -> f64 {
    let pb_dist = blocked_by_distribution(me, chains, all_exclusive);
    let mut r_lw = 0.0;
    for (s_idx, s) in chains.iter().enumerate() {
        if pb_dist[s_idx] == 0.0 {
            continue;
        }
        let br = fixed_br.unwrap_or_else(|| blocking_ratio(s.n_lk.max(1.0)));
        r_lw += pb_dist[s_idx] * br * s.r_s;
    }
    r_lw
}

/// Maximum lock-wait inflation over the first-order wait `b(t)` — waiting
/// chains are physically bounded by the site population and broken by
/// deadlock aborts, so the geometric chain expansion must saturate.
const MAX_CHAIN_INFLATION: f64 = 8.0;

/// Solves Eqs. 18 + 20 *simultaneously* for every chain at a site.
///
/// Substituting `R_s(s) = B(s) + N_lk(s)·Pb(s)·R_LW(s)` into
/// `R_LW(t) = Σ_s PB(t,s)·BR(s)·R_s(s)` gives the linear system
///
/// ```text
/// R_LW(t) = b(t) + Σ_s A(t,s)·R_LW(s)
/// b(t)    = Σ_s PB(t,s)·BR(s)·B(s)
/// A(t,s)  = PB(t,s)·BR(s)·N_lk(s)·Pb(s)·(1 − Pd(s))
/// ```
///
/// (the `1 − Pd(s)` factor reflects that a blocked blocker that becomes a
/// deadlock victim releases its locks instead of prolonging the wait).
/// Solving directly instead of relaxing removes the geometric divergence at
/// high contention; when the system itself has no bounded positive solution
/// (spectral radius ≥ 1 — analytic thrashing), the wait saturates at
/// `MAX_CHAIN_INFLATION` (8×) times the first-order wait, reflecting the
/// population bound on real waiting chains.
pub fn lock_wait_times_consistent(
    chains: &[ChainLockState],
    all_exclusive: bool,
    fixed_br: Option<f64>,
) -> Vec<f64> {
    let mut scratch = LockWaitScratch::default();
    let mut out = Vec::new();
    lock_wait_times_consistent_into(chains, all_exclusive, fixed_br, &mut scratch, &mut out);
    out
}

/// Reusable buffers for [`lock_wait_times_consistent_into`].
#[derive(Debug, Clone, Default)]
pub struct LockWaitScratch {
    pb_dist: Vec<f64>,
    a: Vec<f64>,
    b: Vec<f64>,
    m: Vec<f64>,
    x: Vec<f64>,
}

/// Allocation-free variant of [`lock_wait_times_consistent`]: all working
/// storage lives in `scratch` and the wait times are written into `out`
/// (cleared first). The assembly, elimination, and saturation cap are
/// bit-for-bit those of the allocating entry point, so fixed-point loops
/// can switch to this without perturbing converged values.
pub fn lock_wait_times_consistent_into(
    chains: &[ChainLockState],
    all_exclusive: bool,
    fixed_br: Option<f64>,
    scratch: &mut LockWaitScratch,
    out: &mut Vec<f64>,
) {
    let n = chains.len();
    out.clear();
    if n == 0 {
        return;
    }
    let LockWaitScratch {
        pb_dist,
        a,
        b,
        m,
        x,
    } = scratch;
    pb_dist.clear();
    pb_dist.resize(n, 0.0);
    a.clear();
    a.resize(n * n, 0.0);
    b.clear();
    b.resize(n, 0.0);
    for (t_idx, t) in chains.iter().enumerate() {
        blocked_by_distribution_into(t.chain, chains, all_exclusive, pb_dist);
        for (s_idx, s) in chains.iter().enumerate() {
            if pb_dist[s_idx] == 0.0 {
                continue;
            }
            let br = fixed_br.unwrap_or_else(|| blocking_ratio(s.n_lk.max(1.0)));
            b[t_idx] += pb_dist[s_idx] * br * s.useful;
            a[t_idx * n + s_idx] = pb_dist[s_idx] * br * s.n_lk * s.pb * (1.0 - s.pd);
        }
    }
    // (I − A) x = b.
    m.clear();
    m.resize(n * n, 0.0);
    for i in 0..n {
        for j in 0..n {
            m[i * n + j] = f64::from(u8::from(i == j)) - a[i * n + j];
        }
    }
    x.clear();
    x.extend_from_slice(b);
    let solved = crate::phases_linalg_solve_in_place(m, x);
    if solved && x.iter().all(|v| v.is_finite() && *v >= 0.0) {
        out.extend(
            x.iter()
                .zip(b.iter())
                .map(|(&v, &bi)| v.min(bi * MAX_CHAIN_INFLATION)),
        );
    } else {
        out.extend(b.iter().map(|&bi| bi * MAX_CHAIN_INFLATION));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_workload::ChainType::*;

    fn state(chain: ChainType, population: f64, l_h: f64) -> ChainLockState {
        ChainLockState {
            chain,
            population,
            l_h,
            n_lk: 16.0,
            blocked_frac: 0.1,
            r_s: 1000.0,
            useful: 800.0,
            pb: 0.05,
            pd: 0.02,
        }
    }

    #[test]
    fn expected_locks_limits() {
        // p → 0: uniform over 0..N-1.
        assert!((expected_locks_at_abort(0.0, 17.0) - 8.0).abs() < 1e-12);
        // p → 1: abort on the first lock, Y = 0.
        assert!(expected_locks_at_abort(0.9999, 17.0) < 0.01);
        // Monotone decreasing in p.
        let mut prev = f64::INFINITY;
        for i in 1..50 {
            let p = i as f64 / 50.0;
            let e = expected_locks_at_abort(p, 17.0);
            assert!(e <= prev);
            prev = e;
        }
    }

    #[test]
    fn expected_locks_small_p_stability() {
        for &n in &[2.0f64, 8.0, 17.0, 48.0, 100.0] {
            let uniform = (n - 1.0) / 2.0;
            // Log-spaced sweep p ∈ [1e-12, 0.5]: monotone non-increasing,
            // never above the p → 0 uniform limit, and with no jumps —
            // successive values (ratio 10^(1/16) apart in p) must stay
            // within a sliver of each other, which a cancellation spike or
            // a hard threshold cliff would violate.
            let mut prev = uniform;
            let steps = 16 * 12; // 16 per decade, 1e-12 → 1.0, stop at 0.5
            for i in 0..=steps {
                let p = 1e-12 * 10f64.powf(i as f64 / 16.0);
                if p > 0.5 {
                    break;
                }
                let e = expected_locks_at_abort(p, n);
                assert!(
                    e <= prev + uniform * 1e-9,
                    "n={n}, p={p}: {e} > prev {prev}"
                );
                assert!(
                    (prev - e) <= uniform * (n * n * p) + uniform * 1e-9,
                    "n={n}, p={p}: jump {} too large",
                    prev - e
                );
                prev = e;
            }
            // Continuity against the uniform-mean limit: tiny p must
            // reproduce (n−1)/2 to near machine precision.
            for p in [1e-12, 1e-11, 1e-10, 1e-9, 3e-9, 1e-8] {
                let e = expected_locks_at_abort(p, n);
                assert!(
                    (e - uniform).abs() < uniform * 1e-6 + 1e-9,
                    "n={n}, p={p}: {e} vs uniform {uniform}"
                );
            }
            // Continuity across the series/closed-form switch at
            // u = n·p ≈ 1e-4: both branches must agree there.
            let p_switch = 1e-4 / n;
            let below = expected_locks_at_abort(p_switch * 0.99, n);
            let above = expected_locks_at_abort(p_switch * 1.01, n);
            // The analytic slope here is ≈ −(n²−1)/12, so that much drop
            // over the 2 % straddle is genuine; anything beyond a sliver
            // more would be a branch cliff.
            let slope = (n * n - 1.0) / 12.0 * (p_switch * 0.02);
            assert!(
                (below - above).abs() < 1.5 * slope + uniform * 1e-8,
                "n={n}: branch mismatch {below} vs {above}"
            );
        }
    }

    #[test]
    fn sigma_bounded() {
        for p in [0.0, 0.001, 0.1, 0.9] {
            let s = sigma(p, 16.0);
            assert!((0.0..=1.0).contains(&s), "p={p}: σ={s}");
        }
    }

    #[test]
    fn locks_held_no_aborts_no_think_is_half() {
        // P_a = 0, R_UT = 0: L_h = N_lk / 2 (uniform acquisition).
        let lh = locks_held(16.0, 0.5, 0.0, 1000.0, 0.0);
        assert!((lh - 8.0).abs() < 1e-12);
    }

    #[test]
    fn think_time_dilutes_locks_held() {
        let lh = locks_held(16.0, 0.5, 0.0, 1000.0, 1000.0);
        assert!((lh - 4.0).abs() < 1e-12, "half the cycle is thinking");
    }

    #[test]
    fn aborts_reduce_locks_held() {
        let lh0 = locks_held(16.0, 0.5, 0.0, 1000.0, 0.0);
        let lh = locks_held(16.0, 0.5, 0.3, 1000.0, 0.0);
        assert!(lh < lh0);
        assert!(lh > 0.0);
    }

    #[test]
    fn readers_do_not_block_readers() {
        let chains = [state(Lro, 4.0, 8.0)];
        let pb = blocking_probability(Lro, &chains, 3000.0, false);
        assert_eq!(pb, 0.0);
        // ... unless the exclusive-only ablation is on.
        let pb_x = blocking_probability(Lro, &chains, 3000.0, true);
        assert!(pb_x > 0.0);
    }

    #[test]
    fn writers_block_everyone_and_self_population_excluded() {
        let chains = [state(Lu, 2.0, 9.0), state(Lro, 2.0, 6.0)];
        // A reader is blocked only by the two LU transactions.
        let pb_r = blocking_probability(Lro, &chains, 3000.0, false);
        assert!((pb_r - 2.0 * 9.0 / 3000.0).abs() < 1e-12);
        // A writer is blocked by the other LU (not itself) and both LRO.
        let pb_w = blocking_probability(Lu, &chains, 3000.0, false);
        assert!((pb_w - (9.0 + 12.0) / 3000.0).abs() < 1e-12);
    }

    #[test]
    fn blocked_by_distribution_sums_to_one() {
        let chains = [
            state(Lu, 2.0, 9.0),
            state(Lro, 2.0, 6.0),
            state(Duc, 1.0, 3.0),
        ];
        let d = blocked_by_distribution(Lu, &chains, false);
        let sum: f64 = d.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Readers can only be blocked by the update chains.
        let d = blocked_by_distribution(Lro, &chains, false);
        assert_eq!(d[1], 0.0);
        assert!(d[0] > 0.0 && d[2] > 0.0);
    }

    #[test]
    fn deadlock_needs_blocked_blockers() {
        let mut chains = vec![state(Lu, 2.0, 9.0), state(Lro, 2.0, 6.0)];
        for c in &mut chains {
            c.blocked_frac = 0.0;
        }
        assert_eq!(deadlock_probability(0, &chains, false), 0.0);
        // With blocked blockers the probability becomes positive for
        // writers…
        for c in &mut chains {
            c.blocked_frac = 0.2;
        }
        assert!(deadlock_probability(0, &chains, false) > 0.0);
        // …and two pure readers can never deadlock with each other.
        let readers = vec![state(Lro, 4.0, 8.0)];
        assert_eq!(deadlock_probability(0, &readers, false), 0.0);
    }

    #[test]
    fn blocking_ratio_near_one_third() {
        // Paper: BR ≈ 1/3, measured range 0.23–0.41.
        for n_lk in [4.0, 16.0, 48.0, 80.0] {
            let br = blocking_ratio(n_lk);
            assert!((0.33..=0.42).contains(&br), "n_lk={n_lk}: {br}");
        }
        assert!((blocking_ratio(1e9) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn scratch_variants_are_bitwise_identical() {
        let chains = [
            state(Lu, 2.0, 9.0),
            state(Lro, 2.0, 6.0),
            state(Duc, 1.0, 3.0),
        ];
        let mut scratch = LockWaitScratch::default();
        let mut out = Vec::new();
        for all_exclusive in [false, true] {
            for fixed_br in [None, Some(1.0 / 3.0)] {
                let fresh = lock_wait_times_consistent(&chains, all_exclusive, fixed_br);
                lock_wait_times_consistent_into(
                    &chains,
                    all_exclusive,
                    fixed_br,
                    &mut scratch,
                    &mut out,
                );
                assert_eq!(fresh, out);
            }
            let mut buf = Vec::new();
            for me_idx in 0..chains.len() {
                let fresh = deadlock_probability(me_idx, &chains, all_exclusive);
                let reused = deadlock_probability_scratch(me_idx, &chains, all_exclusive, &mut buf);
                assert!(fresh.to_bits() == reused.to_bits());
            }
        }
    }

    #[test]
    fn lock_wait_time_weighted_by_blocker() {
        let chains = [state(Lu, 2.0, 9.0), state(Duc, 1.0, 9.0)];
        let r_lw = lock_wait_time(Lro, &chains, false, Some(1.0 / 3.0));
        // Both blockers have R_s = 1000 and equal weights ⇒ 1000/3.
        assert!((r_lw - 1000.0 / 3.0).abs() < 1e-9);
    }
}
