//! # carat-model — the paper's analytical queueing network model
//!
//! This crate is the reproduction's core contribution: the two-level
//! queueing network model of the CARAT distributed database testbed from
//! *"A Queueing Network Model for a Distributed Database Testbed System"*
//! (Jenq, Kohler, Towsley; ICDE 1987).
//!
//! The model predicts throughput, CPU utilization, disk I/O rate, and
//! response times of a distributed transaction processing system running
//! two-phase locking with deadlock detection, before-image journaling, and
//! centralized two-phase commit — **without simulating it**: each site is a
//! closed multi-chain product-form queueing network solved by Mean Value
//! Analysis, and the concurrency-control/commit interactions are folded in
//! through a fixed-point iteration over blocking probabilities, deadlock
//! probabilities, and synchronization delays.
//!
//! ## Model structure (paper §3–§6)
//!
//! 1. **Phases** ([`phases`]): a transaction moves through the phase set
//!    `P = {INIT, U, TM, DM, DMIO, LR, LW, RW, TC, TCIO, TA, TAIO, CWC,
//!    CWA, UL, UT}` according to the transition matrix of Table 1
//!    (local/coordinator chains) or its slave-chain analogue; expected
//!    visit counts solve the linear traffic equations (Eq. 1).
//! 2. **Service demands** ([`demands`]): per-phase CPU/disk requirements
//!    from the Table 2 basic parameters, scaled by visit counts and by the
//!    expected submissions-per-commit `N_s = 1/(1 − P_a)` (Eqs. 2–10).
//! 3. **Contention submodel** ([`contention`]): time-average locks held
//!    `L_h` (Eq. 14), mode-aware blocking probability `Pb` (Eq. 15),
//!    blocked-by distribution `PB` (Eq. 17), two-cycle deadlock victim
//!    probability `Pd` (DESIGN.md §6 — the paper defers to \[JENQ86\]),
//!    blocking time via the blocking ratio `BR = (2N_lk+1)/(6N_lk) ≈ 1/3`
//!    (Eqs. 18–20).
//! 4. **Distributed submodel** ([`solver`]): remote-request wait (Eqs.
//!    21–24), two-phase-commit wait, communication delay α.
//! 5. **Fixed point** ([`solver`]): iterate MVA site solutions and submodel
//!    updates (damped) until the delays are self-consistent.
//!
//! ## Quick example
//!
//! ```
//! use carat_model::{Model, ModelConfig};
//! use carat_workload::StandardWorkload;
//!
//! let cfg = ModelConfig::new(StandardWorkload::Mb4.spec(2), 8);
//! let report = Model::new(cfg).solve();
//! // Two-node testbed: node A (faster disk) outperforms node B.
//! assert!(report.nodes[0].tx_per_s > report.nodes[1].tx_per_s);
//! ```

pub mod availability;
pub mod contention;
pub mod demands;
pub mod output;
pub mod phases;
pub mod solver;

pub use availability::{
    degraded_workload, replicated_n_requests, replicated_workload, solve_availability,
    stochastic_duty, AvailabilityModelReport, BlendedNode, DegradedMode, PartitionRegime,
};
pub use output::{ConvergenceInfo, ModelNodeReport, ModelReport, ModelTypeReport};
pub use phases::{Phase, TransitionMatrix, VisitCounts};
pub use solver::WarmStart;
pub use solver::{Accel, Model, ModelConfig, ModelOptions, MvaAlgo};

/// Internal: in-place dense solve returning `false` on singularity (thin
/// wrapper so `contention` does not need its own linear-algebra import
/// surface). Destroys `m`; overwrites `x` (the right-hand side) with the
/// solution.
pub(crate) fn phases_linalg_solve_in_place(m: &mut [f64], x: &mut [f64]) -> bool {
    carat_qnet::solve_dense_in_place(m, x).is_ok()
}
