//! Availability-weighted submodel for partitioned operation (DESIGN.md §13).
//!
//! The base model assumes a fully connected cluster. Under a network
//! partition the simulator refuses, parks, or degrades submissions whose
//! replica quorums are unreachable, so measured throughput is a mixture of
//! two operating regimes:
//!
//! * the **connected regime** — the ordinary model solution;
//! * the **degraded regime** — the same model solved on a *reduced*
//!   workload in which every user whose transaction type cannot satisfy
//!   its quorum feasibility check (the exact submit-time rule the engine
//!   applies) is removed from the closed network.
//!
//! The two fixed points are blended by the **partition duty cycle** `d`
//! (fraction of the measurement window the cluster spends split):
//!
//! ```text
//! X(t, i) = (1 − d) · X_conn(t, i) + d · X_degr(t, i)
//! ```
//!
//! This is the standard decomposition for systems alternating between
//! regimes on a timescale much longer than a transaction: within each
//! regime the closed network reaches its own steady state, and the
//! long-run average weights the regimes by their time fractions. Removing
//! a user is exactly the "effective MPL" scaling of the tentpole: a
//! refused user contributes no population to any service center while the
//! split lasts (it cycles through refusal pauses off-network), and a
//! parked user contributes nothing until heal.
//!
//! Refused users also produce a predictable abort stream: each refusal
//! costs `think + max(timeout, 1)` milliseconds before the resubmission is
//! refused again, so the model predicts a partition-abort *rate* of
//! `d · Σ_refused 1000 / (think + max(timeout, 1))` per second — the
//! analytical analogue of the simulator's `partition_aborts` counter
//! (restart probability scaled by duty cycle).

use carat_workload::{TxType, WorkloadSpec};

use crate::output::ModelReport;
use crate::solver::{Model, ModelConfig, ModelOptions};

/// How the degraded regime treats submissions that cannot reach their
/// quorum — mirrors the simulator's `DegradationPolicy` without a
/// dependency on the simulation crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradedMode {
    /// Refuse and resubmit after `think + timeout`: the user leaves the
    /// closed network for the duration of the split and generates aborts.
    #[default]
    Abort,
    /// Park until heal: the user leaves the network, no aborts.
    BlockUntilHeal,
    /// Reads may be served by any reachable replica (possibly stale);
    /// updates still refuse.
    StaleRead,
}

impl DegradedMode {
    /// CLI spelling, matching the simulator's policy labels.
    pub fn label(self) -> &'static str {
        match self {
            DegradedMode::Abort => "abort",
            DegradedMode::BlockUntilHeal => "block",
            DegradedMode::StaleRead => "stale-read",
        }
    }

    /// Parses the CLI spelling: `abort`, `block`, or `stale-read`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "abort" => Some(DegradedMode::Abort),
            "block" => Some(DegradedMode::BlockUntilHeal),
            "stale-read" => Some(DegradedMode::StaleRead),
            _ => None,
        }
    }
}

/// Partition-regime description the availability model needs: who is in
/// which component, how data is replicated, and what the degradation
/// policy does about unreachable quorums.
#[derive(Debug, Clone)]
pub struct PartitionRegime {
    /// Component label per site during the split (the engine's `comp`
    /// vector). All-equal labels mean "no split".
    pub groups: Vec<u8>,
    /// Long-run fraction of the measurement window spent split, in
    /// `[0, 1]`. Scheduled splits: `Σ (heal − at) / window`. A stochastic
    /// split/heal process: [`stochastic_duty`].
    pub duty: f64,
    /// Replication degree `k`: record of site `s` is replicated on sites
    /// `s, s+1, …, s+k−1 (mod S)`.
    pub replication: usize,
    /// Degradation policy.
    pub mode: DegradedMode,
    /// User think time between submissions (ms) — sets the refusal cycle
    /// length.
    pub think_time_ms: f64,
    /// Network retransmission timeout (ms) — the refusal resubmission
    /// pause is `think + max(timeout, 1)`.
    pub timeout_ms: f64,
}

impl PartitionRegime {
    /// Majority write quorum for the replication degree.
    pub fn write_quorum(&self) -> usize {
        self.replication / 2 + 1
    }

    /// The engine's submit-time feasibility rule for one `(home, type)`
    /// pair during the split: every accessed plan site must offer enough
    /// usable replicas (`usable` = replica in the home's component).
    /// Distributed types are charged for *all* remote sites — exact for
    /// the paper's two-site testbed, conservative beyond it.
    pub fn type_feasible(&self, home: usize, t: TxType) -> bool {
        let sites = self.groups.len();
        let q = self.write_quorum();
        let my = self.groups[home];
        for s in 0..sites {
            if s != home && !t.is_distributed() {
                continue;
            }
            let alive = (0..self.replication)
                .filter(|&j| self.groups[(s + j) % sites] == my)
                .count();
            let ok = if t.is_update() {
                alive >= q
            } else {
                alive >= 1 && (alive >= q || self.mode == DegradedMode::StaleRead)
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// Long-run split duty cycle of the stochastic split/heal process
/// (exponential inter-split and heal times): `MTTH / (MTBP + MTTH)` — the
/// standard alternating-renewal availability formula.
pub fn stochastic_duty(mtbp_ms: f64, mtth_ms: f64) -> f64 {
    if mtbp_ms <= 0.0 || mtth_ms <= 0.0 {
        0.0
    } else {
        mtth_ms / (mtbp_ms + mtth_ms)
    }
}

/// Availability-blended throughput prediction for one node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlendedNode {
    /// Node label ("A", "B", …).
    pub name: String,
    /// Duty-weighted committed transactions per second.
    pub tx_per_s: f64,
    /// Duty-weighted records per second.
    pub records_per_s: f64,
}

/// Output of the availability-weighted model.
#[derive(Debug, Clone)]
pub struct AvailabilityModelReport {
    /// The connected-regime fixed point.
    pub connected: ModelReport,
    /// The degraded-regime fixed point (`None` when the split leaves no
    /// feasible users anywhere — degraded throughput is then zero).
    pub degraded: Option<ModelReport>,
    /// Duty cycle used for blending.
    pub duty: f64,
    /// Per-node blended predictions.
    pub nodes: Vec<BlendedNode>,
    /// Users removed from the degraded regime that cycle through refusals
    /// (policy `abort` / infeasible updates under `stale-read`).
    pub refused_users: usize,
    /// Users parked until heal (`block` policy).
    pub blocked_users: usize,
    /// Predicted partition-abort rate (refusals per second, duty-weighted).
    pub partition_aborts_per_s: f64,
}

impl AvailabilityModelReport {
    /// System-wide blended throughput.
    pub fn total_tx_per_s(&self) -> f64 {
        self.nodes.iter().map(|n| n.tx_per_s).sum()
    }
}

/// Write-all replication turns every local update into a distributed
/// update: with `k > 1` the write set of an update homed at `s` spans
/// sites `s, …, s+k−1`, so its coordinator chain pays the remote-write and
/// two-phase-commit cost the model already prices into distributed update
/// types. Reads are unaffected (read-one serves from the primary).
/// Write-all amplification on the transaction size: with replication `k`,
/// every record an update touches is written on `k` replicas, so an update
/// transaction of `n` requests performs `k·n` accesses while reads stay at
/// `n` (read-one). The model's `n_requests` is global across chains, so we
/// apply the *workload-averaged* amplification
/// `n' = n · (1 + (k−1) · f_u)` where `f_u` is the update-user fraction —
/// exact when update demand dominates the bottleneck, an approximation
/// otherwise (the gate in `exp_partition` carries the measured error).
pub fn replicated_n_requests(n: u32, spec: &WorkloadSpec, replication: usize) -> u32 {
    if replication <= 1 {
        return n;
    }
    let (mut upd, mut tot) = (0usize, 0usize);
    for node_users in &spec.users {
        for &(t, c) in node_users {
            tot += c;
            if t.is_update() {
                upd += c;
            }
        }
    }
    if tot == 0 {
        return n;
    }
    let f_u = upd as f64 / tot as f64;
    (n as f64 * (1.0 + (replication as f64 - 1.0) * f_u))
        .round()
        .max(1.0) as u32
}

pub fn replicated_workload(spec: &WorkloadSpec, replication: usize) -> WorkloadSpec {
    if replication <= 1 {
        return spec.clone();
    }
    let users = spec
        .users
        .iter()
        .map(|node_users| {
            node_users
                .iter()
                .map(|&(t, c)| {
                    let t = if t == TxType::Lu { TxType::Du } else { t };
                    (t, c)
                })
                .collect()
        })
        .collect();
    WorkloadSpec {
        name: format!("{}/replicated", spec.name),
        users,
    }
}

/// Builds the degraded-regime workload: the base spec minus every user
/// whose type fails the feasibility rule at its home node. Returns the
/// spec and the number of users removed.
pub fn degraded_workload(spec: &WorkloadSpec, regime: &PartitionRegime) -> (WorkloadSpec, usize) {
    let mut users = Vec::with_capacity(spec.users.len());
    let mut removed = 0usize;
    for (node, node_users) in spec.users.iter().enumerate() {
        let mut kept: Vec<(TxType, usize)> = Vec::new();
        for &(t, count) in node_users {
            if regime.type_feasible(node, t) {
                kept.push((t, count));
            } else {
                removed += count;
            }
        }
        users.push(kept);
    }
    (
        WorkloadSpec {
            name: format!("{}/degraded", spec.name),
            users,
        },
        removed,
    )
}

/// Solves the availability-weighted model: connected and degraded fixed
/// points blended by the partition duty cycle.
pub fn solve_availability(
    cfg: &ModelConfig,
    opts: &ModelOptions,
    regime: &PartitionRegime,
) -> AvailabilityModelReport {
    assert_eq!(
        regime.groups.len(),
        cfg.params.sites(),
        "partition regime must label every site"
    );
    let duty = regime.duty.clamp(0.0, 1.0);
    // Replication overhead applies in BOTH regimes: the connected cluster
    // already pays write-all for every update (extra remote writes via the
    // Lu → Du promotion, write amplification via the inflated transaction
    // size).
    let mut ccfg = cfg.clone();
    ccfg.workload = replicated_workload(&cfg.workload, regime.replication);
    ccfg.n_requests = replicated_n_requests(cfg.n_requests, &cfg.workload, regime.replication);
    let connected = Model::with_options(ccfg.clone(), opts.clone()).solve();

    let (degraded_spec, removed) = degraded_workload(&ccfg.workload, regime);
    let (refused_users, blocked_users) = match regime.mode {
        DegradedMode::BlockUntilHeal => (0, removed),
        _ => (removed, 0),
    };

    // Lock-shadow approximation: when the split denies a write quorum to
    // every update user, the updates in flight at the split boundary
    // freeze in presumed-abort termination (their abort round cannot cross
    // the split) still holding their locks, and surviving readers queue
    // behind those abandoned locks. The degraded regime then delivers no
    // sustained throughput even under `stale-read`, so it is modelled as
    // empty rather than as a readers-only network.
    let had_updates = |s: &WorkloadSpec| {
        s.users
            .iter()
            .flatten()
            .any(|&(t, c)| c > 0 && t.is_update())
    };
    let shadowed = had_updates(&ccfg.workload) && !had_updates(&degraded_spec);

    let degraded = if duty > 0.0
        && !shadowed
        && (0..degraded_spec.sites()).any(|n| degraded_spec.users_at(n) > 0)
    {
        let mut dcfg = ccfg.clone();
        dcfg.workload = degraded_spec;
        Some(Model::with_options(dcfg, opts.clone()).solve())
    } else {
        None
    };

    let nodes = connected
        .nodes
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let (dt, dr) = degraded
                .as_ref()
                .and_then(|d| d.nodes.get(i))
                .map_or((0.0, 0.0), |d| (d.tx_per_s, d.records_per_s));
            BlendedNode {
                name: c.name.clone(),
                tx_per_s: (1.0 - duty) * c.tx_per_s + duty * dt,
                records_per_s: (1.0 - duty) * c.records_per_s + duty * dr,
            }
        })
        .collect();

    let cycle_ms = regime.think_time_ms + regime.timeout_ms.max(1.0);
    let partition_aborts_per_s = duty * refused_users as f64 * 1000.0 / cycle_ms;

    AvailabilityModelReport {
        connected,
        degraded,
        duty,
        nodes,
        refused_users,
        blocked_users,
        partition_aborts_per_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carat_workload::StandardWorkload;

    fn regime2(mode: DegradedMode, replication: usize) -> PartitionRegime {
        PartitionRegime {
            groups: vec![0, 1],
            duty: 0.5,
            replication,
            mode,
            think_time_ms: 0.0,
            timeout_ms: 100.0,
        }
    }

    #[test]
    fn duty_formula_is_alternating_renewal() {
        assert_eq!(stochastic_duty(0.0, 5.0), 0.0);
        assert_eq!(stochastic_duty(5.0, 0.0), 0.0);
        assert!((stochastic_duty(30_000.0, 10_000.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unreplicated_split_kills_distributed_types_only() {
        let r = regime2(DegradedMode::Abort, 1);
        assert!(r.type_feasible(0, TxType::Lro));
        assert!(r.type_feasible(0, TxType::Lu));
        assert!(!r.type_feasible(0, TxType::Dro));
        assert!(!r.type_feasible(1, TxType::Du));
    }

    #[test]
    fn two_replicas_split_blocks_all_updates() {
        // k = 2 over 2 sites: every record has a replica on both sides, so
        // a split leaves alive = 1 < q = 2 for any update; reads survive
        // only under stale-read.
        let r = regime2(DegradedMode::Abort, 2);
        assert!(!r.type_feasible(0, TxType::Lu));
        assert!(
            !r.type_feasible(0, TxType::Lro),
            "read-one still needs quorum without stale-read"
        );
        let sr = regime2(DegradedMode::StaleRead, 2);
        assert!(sr.type_feasible(0, TxType::Lro));
        assert!(
            sr.type_feasible(0, TxType::Dro),
            "remote reads fail over to the local replica"
        );
        assert!(!sr.type_feasible(0, TxType::Du));
    }

    #[test]
    fn degraded_workload_strips_infeasible_users() {
        let spec = StandardWorkload::Mb4.spec(2);
        let r = regime2(DegradedMode::Abort, 1);
        let (d, removed) = degraded_workload(&spec, &r);
        // DRO + DU removed at each node: 2 users per node gone.
        assert_eq!(removed, 4);
        assert_eq!(d.users_at(0), 2);
        assert_eq!(d.user_count(0, TxType::Dro), 0);
        assert_eq!(d.user_count(0, TxType::Lu), 1);
    }

    #[test]
    fn replication_promotes_local_updates_to_distributed() {
        let spec = StandardWorkload::Lb8.spec(2);
        let r1 = replicated_workload(&spec, 1);
        assert_eq!(r1.user_count(0, TxType::Lu), 4, "k = 1 is a no-op");
        let r2 = replicated_workload(&spec, 2);
        assert_eq!(r2.user_count(0, TxType::Lu), 0);
        assert_eq!(r2.user_count(0, TxType::Du), 4);
        assert_eq!(r2.user_count(0, TxType::Lro), 4, "reads stay local");
        // The connected regime must predict lower throughput with write-all
        // replication than without it.
        let cfg = ModelConfig::new(StandardWorkload::Mb4.spec(2), 4);
        let opts = ModelOptions::default();
        let mk = |k: usize| {
            solve_availability(
                &cfg,
                &opts,
                &PartitionRegime {
                    duty: 0.0,
                    ..regime2(DegradedMode::Abort, k)
                },
            )
            .total_tx_per_s()
        };
        assert!(mk(2) < mk(1), "write-all must cost throughput");
    }

    #[test]
    fn blend_interpolates_between_regimes() {
        let cfg = ModelConfig::new(StandardWorkload::Mb4.spec(2), 4);
        let opts = ModelOptions::default();
        let mut r = regime2(DegradedMode::Abort, 1);
        let rep = solve_availability(&cfg, &opts, &r);
        let conn_x = rep.connected.nodes[0].tx_per_s;
        let degr_x = rep.degraded.as_ref().unwrap().nodes[0].tx_per_s;
        assert!(
            (rep.nodes[0].tx_per_s - 0.5 * (conn_x + degr_x)).abs() < 1e-12,
            "50% duty must average the regimes"
        );
        // Zero duty collapses to the connected model exactly.
        r.duty = 0.0;
        let rep0 = solve_availability(&cfg, &opts, &r);
        assert_eq!(rep0.nodes[0].tx_per_s, conn_x);
        assert_eq!(rep0.partition_aborts_per_s, 0.0);
    }

    #[test]
    fn block_policy_parks_instead_of_aborting() {
        let cfg = ModelConfig::new(StandardWorkload::Mb4.spec(2), 4);
        let opts = ModelOptions::default();
        let rep = solve_availability(&cfg, &opts, &regime2(DegradedMode::BlockUntilHeal, 1));
        assert_eq!(rep.blocked_users, 4);
        assert_eq!(rep.refused_users, 0);
        assert_eq!(rep.partition_aborts_per_s, 0.0);
        let rep_a = solve_availability(&cfg, &opts, &regime2(DegradedMode::Abort, 1));
        assert_eq!(rep_a.refused_users, 4);
        // 4 refused users, 100 ms cycle, 50% duty → 20 refusals/s.
        assert!((rep_a.partition_aborts_per_s - 20.0).abs() < 1e-12);
    }

    #[test]
    fn lock_shadow_freezes_stale_readers_without_any_write_quorum() {
        // k = 2 over 2 sites under stale-read: reads are individually
        // feasible, but no update anywhere can reach a quorum, so the
        // abandoned-lock shadow empties the degraded regime.
        let cfg = ModelConfig::new(StandardWorkload::Mb4.spec(2), 4);
        let opts = ModelOptions::default();
        let rep = solve_availability(&cfg, &opts, &regime2(DegradedMode::StaleRead, 2));
        assert!(rep.degraded.is_none(), "shadowed regime must not be solved");
        let conn = rep.connected.nodes[0].tx_per_s;
        assert!((rep.nodes[0].tx_per_s - 0.5 * conn).abs() < 1e-12);
        // With k = 1 the local updates keep their quorum, so the shadow
        // does not trigger and the readers-plus-local-updates regime runs.
        let rep1 = solve_availability(&cfg, &opts, &regime2(DegradedMode::StaleRead, 1));
        assert!(rep1.degraded.is_some());
    }

    #[test]
    fn fully_infeasible_split_yields_zero_degraded_throughput() {
        // k = 2 split with the abort policy: nothing survives at either
        // node, so the degraded regime is the empty network.
        let cfg = ModelConfig::new(StandardWorkload::Lb8.spec(2), 4);
        let opts = ModelOptions::default();
        let rep = solve_availability(&cfg, &opts, &regime2(DegradedMode::Abort, 2));
        assert!(rep.degraded.is_none());
        let conn = rep.connected.nodes[0].tx_per_s;
        assert!((rep.nodes[0].tx_per_s - 0.5 * conn).abs() < 1e-12);
    }
}
