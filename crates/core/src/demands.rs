//! Chain contexts and service-demand assembly (paper §5).

use carat_qnet::yao_blocks;
use carat_workload::{ChainType, SystemParams, WorkloadSpec};

use crate::phases::{Phase, VisitCounts};

/// Static description of one routing chain (a transaction type at a site).
#[derive(Debug, Clone)]
pub struct ChainCtx {
    /// Chain type.
    pub chain: ChainType,
    /// Site the chain runs at (slaves run at the remote site).
    pub site: usize,
    /// `N(t, i)`: chain population.
    pub population: usize,
    /// `n(t)`: total requests of the owning transaction (coordinator view).
    pub n: f64,
    /// `l(t)`: requests executed *at this site* by this chain.
    pub l: f64,
    /// `r(t)`: remote requests issued by this chain (coordinators only).
    pub r: f64,
    /// `q(t)`: mean granules (lock requests, disk I/Os) per request at this
    /// site, from Yao's formula.
    pub q: f64,
    /// `N_lk(t)` at this site: `l · q` (paper Eq. 2).
    pub n_lk: f64,
}

/// Builds every populated chain context for a workload.
///
/// Local chains execute all `n` requests at home. Distributed transactions
/// split `n` into `(l, r)` by [`SystemParams::split_requests`]; the
/// coordinator chain runs `l` requests at home, and each of the
/// `sites − 1` slave chains runs `r / (sites − 1)` requests at its site.
pub fn chain_contexts(
    params: &SystemParams,
    workload: &WorkloadSpec,
    n_requests: u32,
) -> Vec<ChainCtx> {
    let mut out = Vec::new();
    let (l_split, r_split) = params.split_requests(n_requests);
    let slaves = params.sites().saturating_sub(1).max(1);
    for site in 0..params.sites() {
        for (chain, population) in workload.chain_populations(site) {
            let (n, l, r) = match chain {
                ChainType::Lro | ChainType::Lu => (n_requests as f64, n_requests as f64, 0.0),
                ChainType::Droc | ChainType::Duc => {
                    (n_requests as f64, l_split as f64, r_split as f64)
                }
                ChainType::Dros | ChainType::Dus => {
                    let l = r_split as f64 / slaves as f64;
                    (l, l, 0.0)
                }
            };
            if l <= 0.0 {
                // A slave chain with no requests never materialises.
                continue;
            }
            let q = granules_per_request(params, l);
            out.push(ChainCtx {
                chain,
                site,
                population,
                n,
                l,
                r,
                q,
                n_lk: l * q,
            });
        }
    }
    out
}

/// `q(t) = g(t)/n(t)` with `g(t)` from Yao's formula over the records the
/// chain touches at its site (paper §5.2).
pub fn granules_per_request(params: &SystemParams, requests_at_site: f64) -> f64 {
    let records = (requests_at_site * params.records_per_request as f64).round() as u64;
    if records == 0 {
        return 0.0;
    }
    let g = yao_blocks(
        params.records_per_site(),
        params.records_per_granule as u64,
        records,
    );
    g / requests_at_site
}

/// Per-visit CPU and disk service requirements for every phase
/// (`R_c^(cpu)`, `R_c^(disk)` of paper §5.3).
///
/// Disk time is split into database-file I/O and recovery-journal I/O so
/// the solver can model the testbed's forced shared-disk configuration
/// (the default — both streams hit one device, paper §2) as well as the
/// separate-log-disk configuration the paper says a real deployment would
/// use.
#[derive(Debug, Clone)]
pub struct PhaseCosts {
    /// CPU ms per visit, indexed by [`Phase::idx`].
    pub cpu: [f64; Phase::COUNT],
    /// Database-file disk ms per visit.
    pub disk: [f64; Phase::COUNT],
    /// Recovery-journal disk ms per visit.
    pub log: [f64; Phase::COUNT],
    /// Database granule I/O operations per visit.
    pub ios: [f64; Phase::COUNT],
    /// Journal I/O operations per visit.
    pub log_ios: [f64; Phase::COUNT],
}

/// Assembles the phase costs of a chain.
///
/// `sigma` is σ(t, i) — the mean fraction of locks (and therefore journaled
/// blocks) held at abort time — which scales the rollback I/O of the TAIO
/// phase (DESIGN.md §6).
pub fn phase_costs(params: &SystemParams, ctx: &ChainCtx, sigma: f64) -> PhaseCosts {
    let b = &params.basic;
    let t = ctx.chain;
    let io = params.nodes[ctx.site].disk_io_ms;
    let mut cpu = [0.0; Phase::COUNT];
    let mut disk = [0.0; Phase::COUNT];
    let mut log = [0.0; Phase::COUNT];
    let mut ios = [0.0; Phase::COUNT];
    let mut log_ios = [0.0; Phase::COUNT];

    cpu[Phase::Init.idx()] = b.init_cpu(t);
    cpu[Phase::U.idx()] = b.r_u;
    cpu[Phase::Tm.idx()] = b.r_tm(t);
    cpu[Phase::Dm.idx()] = b.r_dm(t);
    cpu[Phase::Lr.idx()] = b.r_lr;
    cpu[Phase::Dmio.idx()] = b.r_dmio_cpu(t);
    cpu[Phase::Tc.idx()] = b.tc_cpu(t);
    cpu[Phase::Ta.idx()] = b.ta_cpu(t);
    cpu[Phase::Ul.idx()] = ctx.n_lk * b.ul_cpu_per_lock();

    // DMIO: a retrieval is one database read; an update is read + journal
    // (before-image) write + in-place write.
    let granule_ios = b.ios_per_granule(t) as f64;
    if t.is_update() {
        disk[Phase::Dmio.idx()] = (granule_ios - 1.0) * io;
        ios[Phase::Dmio.idx()] = granule_ios - 1.0;
        log[Phase::Dmio.idx()] = io;
        log_ios[Phase::Dmio.idx()] = 1.0;
    } else {
        disk[Phase::Dmio.idx()] = granule_ios * io;
        ios[Phase::Dmio.idx()] = granule_ios;
    }

    // TCIO: commit/prepare records are journal writes.
    log[Phase::Tcio.idx()] = b.commit_ios(t) as f64 * io;
    log_ios[Phase::Tcio.idx()] = b.commit_ios(t) as f64;

    if t.is_update() {
        // σ·N_lk block restores (database file) plus the forced abort
        // record (journal) — the force is a correctness requirement, see
        // `carat_storage::Database::rollback`.
        let undo_blocks = sigma * ctx.n_lk;
        disk[Phase::Taio.idx()] = undo_blocks * io;
        ios[Phase::Taio.idx()] = undo_blocks;
        log[Phase::Taio.idx()] = io;
        log_ios[Phase::Taio.idx()] = 1.0;
    }

    PhaseCosts {
        cpu,
        disk,
        log,
        ios,
        log_ios,
    }
}

/// Aggregate demands of one chain between two successive commits
/// (paper Eqs. 5–10): everything is scaled by `N_s` submissions per commit.
#[derive(Debug, Clone, Copy, Default)]
pub struct Demands {
    /// CPU demand per commit cycle (Eq. 5).
    pub cpu: f64,
    /// Database-disk demand per commit cycle (part of Eq. 6).
    pub disk: f64,
    /// Journal-disk demand per commit cycle (the rest of Eq. 6; folded
    /// into `disk` when the journal shares the database device).
    pub log: f64,
    /// Pure synchronization delay per cycle: LW + RW + CW + UT
    /// (Eqs. 7–10).
    pub delay: f64,
    /// Database granule I/O operations per cycle.
    pub ios: f64,
    /// Journal I/O operations per cycle.
    pub log_ios: f64,
}

/// Per-visit delays at the synchronization centers.
#[derive(Debug, Clone, Copy, Default)]
pub struct DelayTimes {
    /// `R_LW`: mean lock-wait per blocked request.
    pub lw: f64,
    /// `R_RW`: mean remote wait per visit.
    pub rw: f64,
    /// `R_CWC`: commit-wait per committing execution.
    pub cwc: f64,
    /// `R_CWA`: abort-coordination wait per aborting execution.
    pub cwa: f64,
}

/// Combines visit counts, phase costs, and delays into cycle demands.
pub fn demands(
    params: &SystemParams,
    v: &VisitCounts,
    costs: &PhaseCosts,
    delays: &DelayTimes,
    n_s: f64,
) -> Demands {
    let mut cpu = 0.0;
    for ph in Phase::CPU {
        cpu += v.get(ph) * costs.cpu[ph.idx()];
    }
    let mut disk = 0.0;
    let mut log = 0.0;
    let mut ios = 0.0;
    let mut log_ios = 0.0;
    for ph in Phase::DISK {
        disk += v.get(ph) * costs.disk[ph.idx()];
        log += v.get(ph) * costs.log[ph.idx()];
        ios += v.get(ph) * costs.ios[ph.idx()];
        log_ios += v.get(ph) * costs.log_ios[ph.idx()];
    }
    let delay = v.get(Phase::Lw) * delays.lw
        + v.get(Phase::Rw) * delays.rw
        + v.get(Phase::Cwc) * delays.cwc
        + v.get(Phase::Cwa) * delays.cwa
        + params.think_time_ms;
    Demands {
        cpu: n_s * cpu,
        disk: n_s * disk,
        log: n_s * log,
        delay: n_s * delay,
        ios: n_s * ios,
        log_ios: n_s * log_ios,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::{Hazards, TransitionMatrix};
    use carat_workload::StandardWorkload;

    #[test]
    fn contexts_cover_all_populated_chains() {
        let p = SystemParams::default();
        let w = StandardWorkload::Mb4.spec(2);
        let ctxs = chain_contexts(&p, &w, 8);
        // 6 chains per node × 2 nodes.
        assert_eq!(ctxs.len(), 12);
        let duc = ctxs
            .iter()
            .find(|c| c.chain == ChainType::Duc && c.site == 0)
            .unwrap();
        assert_eq!(duc.n, 8.0);
        assert_eq!(duc.l, 4.0);
        assert_eq!(duc.r, 4.0);
        let dus = ctxs
            .iter()
            .find(|c| c.chain == ChainType::Dus && c.site == 1)
            .unwrap();
        assert_eq!(dus.l, 4.0);
        assert_eq!(dus.r, 0.0);
    }

    #[test]
    fn q_is_close_to_records_per_request() {
        // Paper §5.2: "g(t) is very close to N_r(t)" for these workloads.
        let p = SystemParams::default();
        let q = granules_per_request(&p, 8.0);
        assert!(q > 3.9 && q <= 4.0, "q = {q}");
    }

    #[test]
    fn lb8_context_has_no_remote_work() {
        let p = SystemParams::default();
        let w = StandardWorkload::Lb8.spec(2);
        let ctxs = chain_contexts(&p, &w, 8);
        assert_eq!(ctxs.len(), 4); // LRO+LU at 2 nodes
        assert!(ctxs.iter().all(|c| c.r == 0.0));
    }

    #[test]
    fn read_chain_demands_have_no_log_io() {
        let p = SystemParams::default();
        let w = StandardWorkload::Lb8.spec(2);
        let ctxs = chain_contexts(&p, &w, 8);
        let lro = ctxs
            .iter()
            .find(|c| c.chain == ChainType::Lro && c.site == 0)
            .unwrap();
        let costs = phase_costs(&p, lro, 0.5);
        assert_eq!(costs.log[Phase::Tcio.idx()], 0.0);
        assert_eq!(costs.disk[Phase::Taio.idx()], 0.0);
        assert_eq!(costs.log[Phase::Taio.idx()], 0.0);
        assert_eq!(costs.disk[Phase::Dmio.idx()], 28.0);
        assert_eq!(costs.log[Phase::Dmio.idx()], 0.0);
    }

    #[test]
    fn update_demands_match_hand_computation() {
        let p = SystemParams::default();
        let w = StandardWorkload::Lb8.spec(2);
        let ctxs = chain_contexts(&p, &w, 4);
        let lu = ctxs
            .iter()
            .find(|c| c.chain == ChainType::Lu && c.site == 1)
            .unwrap();
        let costs = phase_costs(&p, lu, 0.0);
        let m = TransitionMatrix::local_or_coordinator(lu.n, lu.l, lu.r, lu.q, Hazards::default());
        let v = m.visit_counts();
        let d = demands(&p, &v, &costs, &DelayTimes::default(), 1.0);
        // Disk (db + journal): n·q granules × 120 ms + 1 commit force × 40 ms.
        let expect_disk = lu.n * lu.q * 120.0 + 40.0;
        let total_disk = d.disk + d.log;
        assert!(
            (total_disk - expect_disk).abs() < 1e-9,
            "{total_disk} vs {expect_disk}"
        );
        // The journal share: one before-image write per granule + the force.
        let expect_log = lu.n * lu.q * 40.0 + 40.0;
        assert!((d.log - expect_log).abs() < 1e-9);
        // I/O operations: 3 per granule + 1.
        let expect_ios = lu.n * lu.q * 3.0 + 1.0;
        assert!((d.ios + d.log_ios - expect_ios).abs() < 1e-9);
        // CPU: init 2·8 + U (n+1)·7.8 + TM (2n+1)·8 + DM (q+1)·n·8.6
        //      + LR nq·2.2 + DMIO nq·2.5 + TC 8 + UL nq·0.66.
        let nq = lu.n * lu.q;
        let expect_cpu = 16.0
            + (lu.n + 1.0) * 7.8
            + (2.0 * lu.n + 1.0) * 8.0
            + lu.n * (lu.q + 1.0) * 8.6
            + nq * 2.2
            + nq * 2.5
            + 8.0
            + nq * 0.3 * 2.2;
        assert!(
            (d.cpu - expect_cpu).abs() < 1e-6,
            "{} vs {expect_cpu}",
            d.cpu
        );
    }

    #[test]
    fn n_s_scales_everything() {
        let p = SystemParams::default();
        let w = StandardWorkload::Lb8.spec(2);
        let ctxs = chain_contexts(&p, &w, 4);
        let lu = &ctxs[1];
        let costs = phase_costs(&p, lu, 0.3);
        let m = TransitionMatrix::local_or_coordinator(
            lu.n,
            lu.l,
            lu.r,
            lu.q,
            Hazards {
                pb: 0.1,
                pd: 0.1,
                pra: 0.0,
            },
        );
        let v = m.visit_counts();
        let d1 = demands(&p, &v, &costs, &DelayTimes::default(), 1.0);
        let d2 = demands(&p, &v, &costs, &DelayTimes::default(), 2.0);
        assert!((d2.cpu - 2.0 * d1.cpu).abs() < 1e-9);
        assert!((d2.disk - 2.0 * d1.disk).abs() < 1e-9);
        assert!((d2.log - 2.0 * d1.log).abs() < 1e-9);
        assert!((d2.ios - 2.0 * d1.ios).abs() < 1e-9);
    }
}
