//! Model output reports (mirrors `carat-sim`'s report shapes so the bench
//! harness can print model-vs-measurement tables directly).

use std::collections::BTreeMap;

use carat_workload::{ChainType, TxType};

/// Per-transaction-type model predictions at one node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelTypeReport {
    /// Predicted time content per phase, as milliseconds per commit cycle:
    /// `N_s · V_c · (R_c^cpu + R_c^disk)` for the processing phases plus
    /// the LW/RW/CW delay estimates — directly comparable with the
    /// simulator's measured `TypeReport::phase_ms` (service content only;
    /// the simulator's buckets additionally include queueing).
    pub phase_ms: std::collections::BTreeMap<&'static str, f64>,
    /// Predicted throughput (commits/s) of transactions homed at the node.
    pub xput_per_s: f64,
    /// Predicted commit-to-commit cycle time (ms), including failed
    /// executions and think times.
    pub response_ms: f64,
    /// `N_s`: mean submissions per commit (Eq. 4).
    pub n_s: f64,
    /// `Pb`: blocking probability per lock request (Eq. 15).
    pub pb: f64,
    /// `Pd`: deadlock-victim probability per blocked request.
    pub pd: f64,
    /// `P_a`: abort probability per execution (Eq. 3).
    pub p_a: f64,
    /// `L_h`: time-average locks held (Eq. 14).
    pub l_h: f64,
    /// `R_LW`: mean lock wait per blocked request (Eq. 20).
    pub r_lw_ms: f64,
}

/// Per-node model predictions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelNodeReport {
    /// Node label ("A", "B").
    pub name: String,
    /// CPU utilization (the paper's Total-CPU).
    pub cpu_util: f64,
    /// Database-disk utilization.
    pub disk_util: f64,
    /// Log-disk utilization (0 unless `separate_log_disk` is enabled).
    pub log_disk_util: f64,
    /// Disk I/O rate in granules/s (Total-DIO).
    pub dio_per_s: f64,
    /// Committed transactions/s homed at this node (TR-XPUT).
    pub tx_per_s: f64,
    /// Records accessed by committed transactions per second (normalized
    /// record throughput of Figures 5/8).
    pub records_per_s: f64,
    /// Per user transaction type (homed here).
    pub per_type: BTreeMap<TxType, ModelTypeReport>,
    /// Per chain running at this site (includes foreign slaves).
    pub per_chain: Vec<(ChainType, ModelTypeReport)>,
}

/// How the damped fixed-point iteration ended.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ConvergenceInfo {
    /// Whether the iteration met the tolerance before `max_iter`
    /// (it practically always does; `false` means the damped iteration
    /// ran out of iterations and the report is the last iterate).
    pub converged: bool,
    /// Fixed-point iterations used.
    pub iterations: usize,
    /// Largest relative change of any population estimate in the final
    /// iteration — the residual the tolerance is compared against. A
    /// non-converged solve reports how far it still was. This is the
    /// *undamped* step `|new − old| / (1 + |new|)`: the damping factor is
    /// divided back out so the residual reflects the true distance from
    /// the fixed point, not the (smaller) damped move actually applied.
    pub residual: f64,
    /// Whether this solve was seeded from a neighboring point's converged
    /// state ([`crate::Model::solve_warm`]) instead of the cold-start
    /// defaults.
    pub warm_started: bool,
    /// Accelerated steps ([`crate::solver::Accel`]) that were taken and
    /// survived the retrospective residual check. Always 0 with
    /// acceleration off.
    pub accel_accepted: usize,
    /// Accelerated steps that were rejected: either the candidate left the
    /// [0, 1]/positivity bounds before being applied, or the following
    /// iteration's residual grew and the state was rolled back to the
    /// plain damped iterate. Always 0 with acceleration off.
    pub accel_rejected: usize,
}

/// Full model solution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelReport {
    /// Per-node predictions.
    pub nodes: Vec<ModelNodeReport>,
    /// Fixed-point termination diagnostics.
    pub convergence: ConvergenceInfo,
}

impl ModelReport {
    /// System-wide committed transactions per second.
    pub fn total_tx_per_s(&self) -> f64 {
        self.nodes.iter().map(|n| n.tx_per_s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_nodes() {
        let mut r = ModelReport::default();
        r.nodes.push(ModelNodeReport {
            tx_per_s: 1.5,
            ..Default::default()
        });
        r.nodes.push(ModelNodeReport {
            tx_per_s: 0.5,
            ..Default::default()
        });
        assert!((r.total_tx_per_s() - 2.0).abs() < 1e-12);
    }
}
