//! Property-based tests for the analytical model's building blocks.

use carat_model::phases::Hazards;
use carat_model::{Phase, TransitionMatrix};
use proptest::prelude::*;

fn hazards() -> impl Strategy<Value = Hazards> {
    (0.0f64..0.9, 0.0f64..0.9, 0.0f64..0.5).prop_map(|(pb, pd, pra)| Hazards { pb, pd, pra })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Local/coordinator matrices are stochastic and their visit counts
    /// satisfy the flow-balance identities for arbitrary hazards.
    #[test]
    fn local_matrix_flow_balance(
        n in 1u32..40,
        remote_frac in 0.0f64..=0.5,
        q in 1.0f64..6.0,
        h in hazards(),
    ) {
        let n = n as f64;
        let r = (n * remote_frac).floor();
        let l = n - r;
        prop_assume!(l >= 1.0);
        let m = TransitionMatrix::local_or_coordinator(n, l, r, q, h);

        for ph in Phase::ALL {
            let s = m.row_sum(ph);
            prop_assert!((s - 1.0).abs() < 1e-9, "{:?}: {}", ph, s);
        }

        let v = m.visit_counts();
        // Non-negative visits.
        for ph in Phase::ALL {
            prop_assert!(v.get(ph) >= -1e-9, "{:?} = {}", ph, v.get(ph));
        }
        // Exactly one pass through UT, INIT, U-entry, and UL per execution.
        prop_assert!((v.get(Phase::Ut) - 1.0).abs() < 1e-9);
        prop_assert!((v.get(Phase::Init) - 1.0).abs() < 1e-9);
        prop_assert!((v.get(Phase::Ul) - 1.0).abs() < 1e-9);
        // Executions end in commit or abort, never both.
        prop_assert!((v.get(Phase::Tc) + v.get(Phase::Ta) - 1.0).abs() < 1e-9);
        // LW flow: V_LW = Pb · V_LR; abort flow from LW: Pd · V_LW.
        prop_assert!((v.get(Phase::Lw) - h.pb * v.get(Phase::Lr)).abs() < 1e-9);
        // DMIO flow: granted locks plus survived waits.
        let granted = (1.0 - h.pb) * v.get(Phase::Lr);
        let survived = (1.0 - h.pd) * v.get(Phase::Lw);
        prop_assert!((v.get(Phase::Dmio) - granted - survived).abs() < 1e-9);
        // Without hazards, V_TM = 2n + 1.
        if h.pb == 0.0 && h.pra == 0.0 {
            prop_assert!((v.get(Phase::Tm) - (2.0 * n + 1.0)).abs() < 1e-6);
        }
        // Hazards can only reduce work per execution.
        prop_assert!(v.get(Phase::Lr) <= l * q + 1e-9);
    }

    /// Slave matrices obey the same conservation laws.
    #[test]
    fn slave_matrix_flow_balance(
        l in 1u32..20,
        q in 1.0f64..6.0,
        h in hazards(),
    ) {
        let l = l as f64;
        let m = TransitionMatrix::slave(l, q, h);
        let v = m.visit_counts();
        prop_assert!((v.get(Phase::Tc) + v.get(Phase::Ta) - 1.0).abs() < 1e-9);
        prop_assert!((v.get(Phase::Lw) - h.pb * v.get(Phase::Lr)).abs() < 1e-9);
        prop_assert!(v.get(Phase::Init).abs() < 1e-12, "slaves have no INIT");
        prop_assert!(v.get(Phase::U).abs() < 1e-12, "slaves have no U phase");
        prop_assert!(v.get(Phase::Lr) <= l * q + 1e-9);
        if h.pb == 0.0 && h.pra == 0.0 {
            prop_assert!((v.get(Phase::Tm) - 2.0 * l).abs() < 1e-6);
            prop_assert!((v.get(Phase::Rw) - l).abs() < 1e-6);
        }
    }

    /// Contention primitives stay in their domains for arbitrary inputs.
    #[test]
    fn contention_primitives_bounded(
        p in 0.0f64..1.0,
        n_lk in 1.0f64..200.0,
        p_a in 0.0f64..0.95,
        r_s in 1.0f64..1e6,
        r_ut in 0.0f64..1e6,
    ) {
        use carat_model::contention::{expected_locks_at_abort, locks_held, sigma};
        let ey = expected_locks_at_abort(p, n_lk);
        prop_assert!((0.0..=n_lk).contains(&ey), "E[Y] = {}", ey);
        let s = sigma(p, n_lk);
        prop_assert!((0.0..=1.0).contains(&s));
        let lh = locks_held(n_lk, s, p_a, r_s, r_ut);
        prop_assert!((0.0..=n_lk / 2.0 + 1e-9).contains(&lh), "L_h = {}", lh);
    }

    /// The consistent lock-wait solve never returns negative or non-finite
    /// waits, even at absurd contention.
    #[test]
    fn lock_wait_solve_always_bounded(
        pops in proptest::collection::vec((1.0f64..8.0, 0.0f64..0.5, 0.0f64..0.5), 1..5),
    ) {
        use carat_model::contention::{lock_wait_times_consistent, ChainLockState};
        use carat_workload::ChainType;
        let chains: Vec<ChainLockState> = pops
            .iter()
            .enumerate()
            .map(|(i, &(pop, pb, pd))| ChainLockState {
                chain: if i % 2 == 0 { ChainType::Lu } else { ChainType::Lro },
                population: pop,
                l_h: 5.0 + i as f64,
                n_lk: 20.0,
                blocked_frac: 0.2,
                r_s: 1_000.0,
                useful: 600.0,
                pb,
                pd,
            })
            .collect();
        let waits = lock_wait_times_consistent(&chains, false, None);
        for (i, w) in waits.iter().enumerate() {
            prop_assert!(w.is_finite() && *w >= 0.0, "chain {}: {}", i, w);
            // Saturation bound: ≤ 8 × first-order wait ≤ 8 × max BR × max useful.
            prop_assert!(*w <= 8.0 * 0.5 * 600.0 + 1e-6);
        }
    }
}
