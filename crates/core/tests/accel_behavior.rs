//! Behavioural tests of the accelerated fixed-point solver: with
//! acceleration enabled the solve must land on the *same* fixed point as
//! the plain damped iteration (the safeguards make acceleration a pure
//! convergence-speed transform), and with acceleration off the solver must
//! remain bitwise identical to the historical behaviour.

use carat_model::{Accel, Model, ModelConfig, ModelOptions, ModelReport};
use carat_obs::IterLog;
use carat_workload::{StandardWorkload, TxType, WorkloadSpec};
use proptest::prelude::*;

fn solve_with(wl: StandardWorkload, n: u32, accel: Accel) -> ModelReport {
    solve_with_tol(wl, n, accel, ModelOptions::default().tol)
}

/// The fixed-point comparisons solve at a tolerance well below the 1e-9
/// agreement they assert, so both iterates sit closer to the fixed point
/// than the distance being measured.
fn solve_with_tol(wl: StandardWorkload, n: u32, accel: Accel, tol: f64) -> ModelReport {
    Model::with_options(
        ModelConfig::new(wl.spec(2), n),
        ModelOptions {
            accel,
            tol,
            ..ModelOptions::default()
        },
    )
    .solve()
}

/// Relative agreement of every numeric field a report exposes.
fn assert_reports_close(a: &ModelReport, b: &ModelReport, tol: f64) {
    let close = |x: f64, y: f64, what: &str| {
        let rel = (x - y).abs() / (1.0 + x.abs().max(y.abs()));
        assert!(rel < tol, "{what}: {x} vs {y} (rel {rel:.3e})");
    };
    assert_eq!(a.nodes.len(), b.nodes.len());
    for (na, nb) in a.nodes.iter().zip(&b.nodes) {
        close(na.tx_per_s, nb.tx_per_s, "tx_per_s");
        close(na.records_per_s, nb.records_per_s, "records_per_s");
        close(na.cpu_util, nb.cpu_util, "cpu_util");
        close(na.disk_util, nb.disk_util, "disk_util");
        close(na.dio_per_s, nb.dio_per_s, "dio_per_s");
        for ((ta, ra), (tb, rb)) in na.per_chain.iter().zip(&nb.per_chain) {
            assert_eq!(ta, tb);
            close(ra.xput_per_s, rb.xput_per_s, "xput_per_s");
            close(ra.response_ms, rb.response_ms, "response_ms");
            close(ra.n_s, rb.n_s, "n_s");
            close(ra.pb, rb.pb, "pb");
            close(ra.pd, rb.pd, "pd");
            close(ra.p_a, rb.p_a, "p_a");
            close(ra.l_h, rb.l_h, "l_h");
            close(ra.r_lw_ms, rb.r_lw_ms, "r_lw_ms");
        }
    }
}

#[test]
fn aitken_and_anderson_reach_the_plain_fixed_point() {
    for wl in [
        StandardWorkload::Lb8,
        StandardWorkload::Mb4,
        StandardWorkload::Mb8,
        StandardWorkload::Ub6,
    ] {
        for n in [4u32, 12, 20] {
            let plain = solve_with_tol(wl, n, Accel::Off, 1e-12);
            assert!(plain.convergence.converged);
            assert_eq!(plain.convergence.accel_accepted, 0);
            assert_eq!(plain.convergence.accel_rejected, 0);
            for accel in [Accel::Aitken, Accel::Anderson(3)] {
                let fast = solve_with_tol(wl, n, accel, 1e-12);
                assert!(fast.convergence.converged, "{wl:?} n={n} {accel:?}");
                assert_reports_close(&plain, &fast, 1e-9);
            }
        }
    }
}

#[test]
fn acceleration_reduces_iterations_on_the_reference_sweep() {
    // The tentpole claim: ≥30% fewer fixed-point iterations summed over
    // the paper's 20 reference points, for both acceleration modes.
    for accel in [Accel::Aitken, Accel::Anderson(3)] {
        let mut plain_total = 0usize;
        let mut fast_total = 0usize;
        for wl in [
            StandardWorkload::Lb8,
            StandardWorkload::Mb4,
            StandardWorkload::Mb8,
            StandardWorkload::Ub6,
        ] {
            for n in [4u32, 8, 12, 16, 20] {
                plain_total += solve_with(wl, n, Accel::Off).convergence.iterations;
                fast_total += solve_with(wl, n, accel).convergence.iterations;
            }
        }
        println!("{accel:?}: {fast_total} accelerated vs {plain_total} plain iterations");
        assert!(
            (fast_total as f64) <= 0.70 * plain_total as f64,
            "{accel:?}: {fast_total} accelerated vs {plain_total} plain iterations"
        );
    }
}

#[test]
fn accepted_steps_are_counted_and_logged() {
    let mut log = IterLog::new();
    log.begin_point("MB8/N=16");
    let (r, _) = Model::with_options(
        ModelConfig::new(StandardWorkload::Mb8.spec(2), 16),
        ModelOptions {
            accel: Accel::Anderson(3),
            ..ModelOptions::default()
        },
    )
    .solve_logged(None, Some(&mut log));
    assert!(r.convergence.converged);
    assert!(r.convergence.accel_accepted > 0);
    // Every accepted/rejected step appears as a row marker, once per
    // iteration (all chains of an iteration share the marker).
    let rows = &log.points()[0].1;
    let acc_iters: std::collections::BTreeSet<usize> = rows
        .iter()
        .filter(|row| row.accel == "acc")
        .map(|row| row.iter)
        .collect();
    let rej_iters: std::collections::BTreeSet<usize> = rows
        .iter()
        .filter(|row| row.accel == "rej")
        .map(|row| row.iter)
        .collect();
    assert_eq!(
        acc_iters.len(),
        r.convergence.accel_accepted + rej_iters.len()
    );
    assert_eq!(rej_iters.len(), r.convergence.accel_rejected);
}

#[test]
fn accel_off_is_the_default_and_changes_nothing() {
    let defaults = ModelOptions::default();
    assert_eq!(defaults.accel, Accel::Off);
    let a = Model::new(ModelConfig::new(StandardWorkload::Ub6.spec(2), 12)).solve();
    let b = solve_with(StandardWorkload::Ub6, 12, Accel::Off);
    assert_eq!(a, b);
}

#[test]
fn accel_parses_flag_forms() {
    assert_eq!(Accel::parse("off"), Some(Accel::Off));
    assert_eq!(Accel::parse("aitken"), Some(Accel::Aitken));
    assert_eq!(
        Accel::parse("anderson"),
        Some(Accel::Anderson(carat_model::solver::DEFAULT_ANDERSON_DEPTH))
    );
    assert_eq!(Accel::parse("anderson:5"), Some(Accel::Anderson(5)));
    assert_eq!(Accel::parse("anderson:0"), None);
    assert_eq!(Accel::parse("newton"), None);
}

/// Random two-node workloads: a few users of each type on each node.
fn workload_strategy() -> impl Strategy<Value = (WorkloadSpec, u32)> {
    (
        (0usize..3, 0usize..3, 0usize..3),
        (0usize..3, 0usize..3, 0usize..3),
        2u32..16,
    )
        .prop_map(|((la, da, ra), (lb, db, rb), n)| {
            let mut node_a = vec![];
            let mut node_b = vec![];
            for (node, lu, du, ro) in [(&mut node_a, la, da, ra), (&mut node_b, lb, db, rb)] {
                if lu > 0 {
                    node.push((TxType::Lu, lu));
                }
                if du > 0 {
                    node.push((TxType::Du, du));
                }
                if ro > 0 {
                    node.push((TxType::Lro, ro));
                }
            }
            if node_a.is_empty() && node_b.is_empty() {
                node_a.push((TxType::Lu, 2usize));
            }
            (
                WorkloadSpec {
                    name: "prop".into(),
                    users: vec![node_a, node_b],
                },
                n,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary workloads and populations, both acceleration modes
    /// land on the plain damped fixed point to 1e-9 in every report field.
    #[test]
    fn accelerated_solves_match_plain_fixed_point((spec, n) in workload_strategy()) {
        let solve = |accel: Accel| {
            Model::with_options(
                ModelConfig::new(spec.clone(), n),
                ModelOptions { accel, tol: 1e-12, ..ModelOptions::default() },
            )
            .solve()
        };
        let plain = solve(Accel::Off);
        prop_assume!(plain.convergence.converged);
        for accel in [Accel::Aitken, Accel::Anderson(3)] {
            let fast = solve(accel);
            prop_assert!(fast.convergence.converged);
            assert_reports_close(&plain, &fast, 1e-9);
        }
    }
}
