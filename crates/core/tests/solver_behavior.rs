//! Behavioural tests of the fixed-point solver: the model must respond to
//! its inputs the way queueing theory demands.

use carat_model::{Model, ModelConfig, ModelOptions, ModelReport, MvaAlgo};
use carat_obs::IterLog;
use carat_workload::{NodeParams, StandardWorkload, SystemParams, TxType, WorkloadSpec};

/// Bitwise equality of everything a report feeds into output.
fn assert_reports_identical(a: &ModelReport, b: &ModelReport) {
    for (na, nb) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(na.tx_per_s, nb.tx_per_s);
        assert_eq!(na.records_per_s, nb.records_per_s);
        assert_eq!(na.cpu_util, nb.cpu_util);
        assert_eq!(na.disk_util, nb.disk_util);
        assert_eq!(na.dio_per_s, nb.dio_per_s);
        assert_eq!(na.per_type, nb.per_type);
        assert_eq!(na.per_chain, nb.per_chain);
    }
}

fn solve(wl: StandardWorkload, n: u32) -> carat_model::ModelReport {
    Model::new(ModelConfig::new(wl.spec(2), n)).solve()
}

#[test]
fn solver_is_deterministic() {
    let a = solve(StandardWorkload::Mb8, 12);
    let b = solve(StandardWorkload::Mb8, 12);
    assert_eq!(a.convergence.iterations, b.convergence.iterations);
    for (na, nb) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(na.tx_per_s, nb.tx_per_s);
        assert_eq!(na.cpu_util, nb.cpu_util);
    }
}

#[test]
fn tightened_tolerance_changes_iterations_not_solution() {
    // Regression for the damped-residual bug: the residual is now the
    // undamped step, so tightening the tolerance must cost extra
    // iterations while leaving the converged solution in place.
    let solve_tol = |tol: f64| {
        Model::with_options(
            ModelConfig::new(StandardWorkload::Mb8.spec(2), 12),
            ModelOptions {
                tol,
                ..ModelOptions::default()
            },
        )
        .solve()
    };
    let loose = solve_tol(1e-6);
    let tight = solve_tol(1e-12);
    assert!(loose.convergence.converged && tight.convergence.converged);
    assert!(
        tight.convergence.iterations > loose.convergence.iterations,
        "tightening 1e-6 → 1e-12 must add iterations ({} vs {})",
        tight.convergence.iterations,
        loose.convergence.iterations
    );
    assert!(tight.convergence.residual < 1e-12);
    for (l, t) in loose.nodes.iter().zip(&tight.nodes) {
        let rel = (l.tx_per_s - t.tx_per_s).abs() / t.tx_per_s;
        assert!(
            rel < 1e-4,
            "node {}: tolerance changed the solution ({} vs {})",
            l.name,
            l.tx_per_s,
            t.tx_per_s
        );
    }
}

#[test]
fn warm_start_converges_faster_to_the_same_fixed_point() {
    let model_at = |n: u32| Model::new(ModelConfig::new(StandardWorkload::Mb8.spec(2), n));
    let (_, ws) = model_at(8).solve_warm(None);
    let (cold, _) = model_at(12).solve_warm(None);
    let (warm, _) = model_at(12).solve_warm(Some(&ws));
    assert!(!cold.convergence.warm_started);
    assert!(warm.convergence.warm_started);
    assert!(
        warm.convergence.iterations < cold.convergence.iterations,
        "warm {} !< cold {}",
        warm.convergence.iterations,
        cold.convergence.iterations
    );
    // Both end within tolerance of the same fixed point.
    for (c, w) in cold.nodes.iter().zip(&warm.nodes) {
        let rel = (c.tx_per_s - w.tx_per_s).abs() / c.tx_per_s;
        assert!(
            rel < 1e-5,
            "node {}: {} vs {}",
            c.name,
            c.tx_per_s,
            w.tx_per_s
        );
    }
}

#[test]
fn iter_log_final_row_matches_convergence_info_exactly() {
    let model = || Model::new(ModelConfig::new(StandardWorkload::Mb8.spec(2), 12));
    let mut log = IterLog::new();
    log.begin_point("MB8/N=12");
    let (logged, _) = model().solve_logged(None, Some(&mut log));
    assert!(logged.convergence.converged);
    // One row per chain context per iteration, and the last row carries
    // exactly the iteration count and residual the report advertises.
    let rows = &log.points()[0].1;
    assert!(!rows.is_empty());
    assert_eq!(rows.len() % logged.convergence.iterations, 0);
    let per_iter = rows.len() / logged.convergence.iterations;
    assert!(per_iter >= 2, "expected multiple chains per iteration");
    let last = log.last_row().unwrap();
    assert_eq!(last.iter, logged.convergence.iterations);
    // Each row carries its own chain's pre-damping residual; the max over
    // the final iteration's rows is the solver's reported residual.
    let final_max = rows
        .iter()
        .filter(|r| r.iter == logged.convergence.iterations)
        .map(|r| r.residual)
        .fold(0.0f64, f64::max);
    assert_eq!(final_max, logged.convergence.residual);
    // Iteration numbers are 1..=iterations, contiguous.
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.iter, i / per_iter + 1);
        assert!(row.pb.is_finite() && row.l_h.is_finite());
    }
    // Logging is observation only: the solution is bitwise unchanged.
    let plain = model().solve();
    assert_eq!(plain.convergence.iterations, logged.convergence.iterations);
    assert_eq!(plain.convergence.residual, logged.convergence.residual);
    assert_reports_identical(&plain, &logged);
}

#[test]
fn incompatible_warm_start_falls_back_to_cold() {
    // A one-site workload snapshot cannot seed the two-site testbed.
    let spec = WorkloadSpec {
        name: "solo".into(),
        users: vec![vec![(TxType::Lro, 2)], vec![]],
    };
    let (_, ws) = Model::new(ModelConfig::new(spec, 4)).solve_warm(None);
    let (r, _) =
        Model::new(ModelConfig::new(StandardWorkload::Mb8.spec(2), 8)).solve_warm(Some(&ws));
    assert!(!r.convergence.warm_started);
    let cold = solve(StandardWorkload::Mb8, 8);
    assert_reports_identical(&r, &cold);
}

#[test]
fn threaded_site_solves_are_bitwise_identical() {
    for threads in [2usize, 4, 8] {
        let par = Model::with_options(
            ModelConfig::new(StandardWorkload::Mb8.spec(2), 16),
            ModelOptions {
                threads,
                ..ModelOptions::default()
            },
        )
        .solve();
        let seq = solve(StandardWorkload::Mb8, 16);
        assert_eq!(par.convergence.iterations, seq.convergence.iterations);
        assert_reports_identical(&par, &seq);
    }
}

#[test]
fn throughput_monotone_decreasing_in_n() {
    for wl in [
        StandardWorkload::Lb8,
        StandardWorkload::Mb4,
        StandardWorkload::Ub6,
    ] {
        let mut prev = f64::INFINITY;
        for n in [4u32, 8, 12, 16, 20] {
            let x = solve(wl, n).total_tx_per_s();
            assert!(x < prev, "{wl} n={n}: {x} !< {prev}");
            prev = x;
        }
    }
}

#[test]
fn utilizations_never_exceed_one() {
    for wl in StandardWorkload::ALL {
        for n in [4u32, 20] {
            let r = solve(wl, n);
            for node in &r.nodes {
                assert!(node.cpu_util <= 1.0 + 1e-9, "{wl} n={n}");
                assert!(node.disk_util <= 1.0 + 1e-9, "{wl} n={n}");
                assert!(node.log_disk_util <= 1.0 + 1e-9, "{wl} n={n}");
            }
        }
    }
}

#[test]
fn identical_nodes_give_symmetric_predictions() {
    // Make node B's disk as fast as node A's: MB-style symmetric workloads
    // must then be exactly symmetric.
    let mut params = SystemParams::default();
    params.nodes[1] = NodeParams {
        name: "B".into(),
        disk_io_ms: 28.0,
    };
    let mut cfg = ModelConfig::new(StandardWorkload::Mb4.spec(2), 8);
    cfg.params = params;
    let r = Model::new(cfg).solve();
    assert!(
        (r.nodes[0].tx_per_s - r.nodes[1].tx_per_s).abs() < 1e-6,
        "{} vs {}",
        r.nodes[0].tx_per_s,
        r.nodes[1].tx_per_s
    );
    assert!((r.nodes[0].cpu_util - r.nodes[1].cpu_util).abs() < 1e-6);
}

#[test]
fn doubling_disk_speed_raises_disk_bound_throughput() {
    let base = solve(StandardWorkload::Lb8, 8);
    let mut params = SystemParams::default();
    for node in &mut params.nodes {
        node.disk_io_ms /= 2.0;
    }
    let mut cfg = ModelConfig::new(StandardWorkload::Lb8.spec(2), 8);
    cfg.params = params;
    let fast = Model::new(cfg).solve();
    assert!(fast.total_tx_per_s() > base.total_tx_per_s() * 1.5);
}

#[test]
fn adding_users_saturates_but_never_reduces_total_below_fewer_users_significantly() {
    // Closed-network sanity: 2 users ≤ 4 users ≤ 8 users in total
    // throughput at low contention (n = 4 keeps deadlocks negligible).
    let mk = |per_node: usize| {
        let spec = WorkloadSpec {
            name: "scale".into(),
            users: vec![vec![(TxType::Lro, per_node)]; 2],
        };
        Model::new(ModelConfig::new(spec, 4))
            .solve()
            .total_tx_per_s()
    };
    let (x2, x4, x8) = (mk(2), mk(4), mk(8));
    assert!(x4 > x2);
    assert!(x8 >= x4 * 0.99);
}

#[test]
fn approximate_mva_option_stays_close_to_exact() {
    let exact = solve(StandardWorkload::Mb8, 8);
    let approx = Model::with_options(
        ModelConfig::new(StandardWorkload::Mb8.spec(2), 8),
        ModelOptions {
            mva: MvaAlgo::Schweitzer,
            ..ModelOptions::default()
        },
    )
    .solve();
    for (e, a) in exact.nodes.iter().zip(&approx.nodes) {
        let rel = (e.tx_per_s - a.tx_per_s).abs() / e.tx_per_s;
        assert!(
            rel < 0.15,
            "node {}: exact {} vs approx {}",
            e.name,
            e.tx_per_s,
            a.tx_per_s
        );
    }
}

#[test]
fn read_only_workload_has_no_aborts_or_log_io() {
    let spec = WorkloadSpec {
        name: "ro".into(),
        users: vec![vec![(TxType::Lro, 4)], vec![(TxType::Lro, 4)]],
    };
    let r = Model::new(ModelConfig::new(spec, 12)).solve();
    for node in &r.nodes {
        let t = &node.per_type[&TxType::Lro];
        assert!(t.p_a < 1e-9, "readers cannot conflict: P_a = {}", t.p_a);
        assert!((t.n_s - 1.0).abs() < 1e-9);
        assert_eq!(t.pb, 0.0);
    }
}

#[test]
fn phase_decomposition_sums_to_response_without_queueing() {
    // With one user there is no queueing and no contention: the model's
    // phase content must sum to (almost exactly) the predicted response.
    let spec = WorkloadSpec {
        name: "solo".into(),
        users: vec![vec![(TxType::Lu, 1)], vec![]],
    };
    let r = Model::new(ModelConfig::new(spec, 8)).solve();
    let t = &r.nodes[0].per_type[&TxType::Lu];
    let phase_sum: f64 = t.phase_ms.values().sum();
    let rel = (phase_sum - t.response_ms).abs() / t.response_ms;
    assert!(
        rel < 1e-6,
        "phases {phase_sum} vs response {}",
        t.response_ms
    );
}
