//! Behavioural tests of the fixed-point solver: the model must respond to
//! its inputs the way queueing theory demands.

use carat_model::{Model, ModelConfig, ModelOptions};
use carat_workload::{NodeParams, StandardWorkload, SystemParams, TxType, WorkloadSpec};

fn solve(wl: StandardWorkload, n: u32) -> carat_model::ModelReport {
    Model::new(ModelConfig::new(wl.spec(2), n)).solve()
}

#[test]
fn solver_is_deterministic() {
    let a = solve(StandardWorkload::Mb8, 12);
    let b = solve(StandardWorkload::Mb8, 12);
    assert_eq!(a.convergence.iterations, b.convergence.iterations);
    for (na, nb) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(na.tx_per_s, nb.tx_per_s);
        assert_eq!(na.cpu_util, nb.cpu_util);
    }
}

#[test]
fn throughput_monotone_decreasing_in_n() {
    for wl in [
        StandardWorkload::Lb8,
        StandardWorkload::Mb4,
        StandardWorkload::Ub6,
    ] {
        let mut prev = f64::INFINITY;
        for n in [4u32, 8, 12, 16, 20] {
            let x = solve(wl, n).total_tx_per_s();
            assert!(x < prev, "{wl} n={n}: {x} !< {prev}");
            prev = x;
        }
    }
}

#[test]
fn utilizations_never_exceed_one() {
    for wl in StandardWorkload::ALL {
        for n in [4u32, 20] {
            let r = solve(wl, n);
            for node in &r.nodes {
                assert!(node.cpu_util <= 1.0 + 1e-9, "{wl} n={n}");
                assert!(node.disk_util <= 1.0 + 1e-9, "{wl} n={n}");
                assert!(node.log_disk_util <= 1.0 + 1e-9, "{wl} n={n}");
            }
        }
    }
}

#[test]
fn identical_nodes_give_symmetric_predictions() {
    // Make node B's disk as fast as node A's: MB-style symmetric workloads
    // must then be exactly symmetric.
    let mut params = SystemParams::default();
    params.nodes[1] = NodeParams {
        name: "B".into(),
        disk_io_ms: 28.0,
    };
    let mut cfg = ModelConfig::new(StandardWorkload::Mb4.spec(2), 8);
    cfg.params = params;
    let r = Model::new(cfg).solve();
    assert!(
        (r.nodes[0].tx_per_s - r.nodes[1].tx_per_s).abs() < 1e-6,
        "{} vs {}",
        r.nodes[0].tx_per_s,
        r.nodes[1].tx_per_s
    );
    assert!((r.nodes[0].cpu_util - r.nodes[1].cpu_util).abs() < 1e-6);
}

#[test]
fn doubling_disk_speed_raises_disk_bound_throughput() {
    let base = solve(StandardWorkload::Lb8, 8);
    let mut params = SystemParams::default();
    for node in &mut params.nodes {
        node.disk_io_ms /= 2.0;
    }
    let mut cfg = ModelConfig::new(StandardWorkload::Lb8.spec(2), 8);
    cfg.params = params;
    let fast = Model::new(cfg).solve();
    assert!(fast.total_tx_per_s() > base.total_tx_per_s() * 1.5);
}

#[test]
fn adding_users_saturates_but_never_reduces_total_below_fewer_users_significantly() {
    // Closed-network sanity: 2 users ≤ 4 users ≤ 8 users in total
    // throughput at low contention (n = 4 keeps deadlocks negligible).
    let mk = |per_node: usize| {
        let spec = WorkloadSpec {
            name: "scale".into(),
            users: vec![vec![(TxType::Lro, per_node)]; 2],
        };
        Model::new(ModelConfig::new(spec, 4))
            .solve()
            .total_tx_per_s()
    };
    let (x2, x4, x8) = (mk(2), mk(4), mk(8));
    assert!(x4 > x2);
    assert!(x8 >= x4 * 0.99);
}

#[test]
fn approximate_mva_option_stays_close_to_exact() {
    let exact = solve(StandardWorkload::Mb8, 8);
    let approx = Model::with_options(
        ModelConfig::new(StandardWorkload::Mb8.spec(2), 8),
        ModelOptions {
            exact_mva: false,
            ..ModelOptions::default()
        },
    )
    .solve();
    for (e, a) in exact.nodes.iter().zip(&approx.nodes) {
        let rel = (e.tx_per_s - a.tx_per_s).abs() / e.tx_per_s;
        assert!(
            rel < 0.15,
            "node {}: exact {} vs approx {}",
            e.name,
            e.tx_per_s,
            a.tx_per_s
        );
    }
}

#[test]
fn read_only_workload_has_no_aborts_or_log_io() {
    let spec = WorkloadSpec {
        name: "ro".into(),
        users: vec![vec![(TxType::Lro, 4)], vec![(TxType::Lro, 4)]],
    };
    let r = Model::new(ModelConfig::new(spec, 12)).solve();
    for node in &r.nodes {
        let t = &node.per_type[&TxType::Lro];
        assert!(t.p_a < 1e-9, "readers cannot conflict: P_a = {}", t.p_a);
        assert!((t.n_s - 1.0).abs() < 1e-9);
        assert_eq!(t.pb, 0.0);
    }
}

#[test]
fn phase_decomposition_sums_to_response_without_queueing() {
    // With one user there is no queueing and no contention: the model's
    // phase content must sum to (almost exactly) the predicted response.
    let spec = WorkloadSpec {
        name: "solo".into(),
        users: vec![vec![(TxType::Lu, 1)], vec![]],
    };
    let r = Model::new(ModelConfig::new(spec, 8)).solve();
    let t = &r.nodes[0].per_type[&TxType::Lu];
    let phase_sum: f64 = t.phase_ms.values().sum();
    let rel = (phase_sum - t.response_ms).abs() / t.response_ms;
    assert!(
        rel < 1e-6,
        "phases {phase_sum} vs response {}",
        t.response_ms
    );
}
