//! Failure drill: crash a node mid-run and watch the system recover.
//!
//! Node B dies at t = 150 s and again at t = 400 s. Each crash loses B's
//! volatile state (lock table, TM/DM servers, un-forced journal tail);
//! journal recovery restores the before-images of every in-flight
//! transaction, everyone who had touched B aborts and restarts, and the
//! run continues. The end-of-run commit audit proves no committed data was
//! lost or corrupted.
//!
//! ```sh
//! cargo run --release -p carat --example failure_drill
//! ```

use carat::prelude::*;

fn main() {
    let mut cfg = SimConfig::new(StandardWorkload::Mb8.spec(2), 8, 2026);
    cfg.warmup_ms = 0.0;
    cfg.measure_ms = 600_000.0;
    cfg.crashes = vec![(150_000.0, 1), (400_000.0, 1)];
    let with_crashes = Sim::new(cfg).expect("valid config").run();

    let mut cfg = SimConfig::new(StandardWorkload::Mb8.spec(2), 8, 2026);
    cfg.warmup_ms = 0.0;
    cfg.measure_ms = 600_000.0;
    let clean = Sim::new(cfg).expect("valid config").run();

    println!("## Ten simulated minutes of MB8, with node B crashing twice\n");
    println!(
        "crashes injected: {}   transactions killed: {}",
        with_crashes.crashes, with_crashes.crash_kills
    );
    for (c, n) in with_crashes.nodes.iter().zip(&clean.nodes) {
        println!(
            "node {}: {:.2} tx/s with crashes vs {:.2} clean  ({:+.0}%)",
            c.name,
            c.tx_per_s,
            n.tx_per_s,
            (c.tx_per_s - n.tx_per_s) / n.tx_per_s * 100.0
        );
    }
    println!(
        "\ncommit audit: {} records checked, {} violations",
        with_crashes.audited_records, with_crashes.audit_violations
    );
    assert_eq!(with_crashes.audit_violations, 0);
    assert!(with_crashes.nodes[1].tx_per_s > 0.0, "node B came back");
    println!("\n→ every record holds exactly its last committed writer's value;");
    println!("  the before-image journal (forced ahead of every in-place write)");
    println!("  survived both crashes. Write-ahead logging works.");
}
