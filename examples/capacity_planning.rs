//! Capacity planning with the analytical model — the use case that
//! motivates an analytical model over a testbed: "what happens if we buy a
//! faster disk / add users?" answered in milliseconds instead of hours of
//! benchmarking.
//!
//! Scenario: node B's DEC RP06 (40 ms/block) is the system bottleneck.
//! We evaluate (a) upgrading it to match node A's RM05 (28 ms), (b) an
//! aggressive 15 ms drive, and (c) how many users each configuration
//! sustains before lock thrashing erodes the gain.
//!
//! ```sh
//! cargo run --release -p carat --example capacity_planning
//! ```

use carat::prelude::*;
use carat::workload::NodeParams;

fn params_with_disk_b(ms: f64) -> SystemParams {
    let mut p = SystemParams::default();
    p.nodes[1] = NodeParams {
        name: "B".into(),
        disk_io_ms: ms,
    };
    p
}

fn users(per_node: usize) -> WorkloadSpec {
    // Mixed read/update population, scaled.
    let lro = per_node / 2;
    let lu = per_node - lro;
    WorkloadSpec {
        name: format!("mix{per_node}"),
        users: vec![vec![(TxType::Lro, lro), (TxType::Lu, lu)]; 2],
    }
}

fn main() {
    println!("## Disk upgrade study (MB4, n = 8)");
    println!("| disk B (ms/block) | node A tx/s | node B tx/s | total |");
    println!("|-------------------|-------------|-------------|-------|");
    for disk_ms in [40.0, 28.0, 15.0] {
        let mut cfg = ModelConfig::new(StandardWorkload::Mb4.spec(2), 8);
        cfg.params = params_with_disk_b(disk_ms);
        let r = Model::new(cfg).solve();
        println!(
            "| {disk_ms:17.0} |       {:5.2} |       {:5.2} | {:5.2} |",
            r.nodes[0].tx_per_s,
            r.nodes[1].tx_per_s,
            r.total_tx_per_s()
        );
    }

    println!("\n## Scaling the multiprogramming level (local mix, n = 8)");
    println!("| users/node | total tx/s | P(abort) LU | mean LU response (s) |");
    println!("|------------|------------|-------------|----------------------|");
    let mut prev_total = 0.0;
    let mut peak_users = 0;
    for per_node in [2usize, 4, 8, 12, 16, 24, 32] {
        let cfg = ModelConfig::new(users(per_node), 8);
        let r = Model::new(cfg).solve();
        let lu = &r.nodes[0].per_type[&TxType::Lu];
        println!(
            "| {per_node:10} |      {:5.2} |       {:4.1}% |               {:6.1} |",
            r.total_tx_per_s(),
            lu.p_a * 100.0,
            lu.response_ms / 1000.0
        );
        if r.total_tx_per_s() > prev_total {
            peak_users = per_node;
            prev_total = r.total_tx_per_s();
        }
    }
    println!(
        "\nThroughput stops improving around {peak_users} users/node — beyond that, \
         additional users only buy lock conflicts and deadlock rollbacks \
         (the paper's 'normalized throughput decreases as n increases' effect, \
         along the multiprogramming axis)."
    );
}
