//! Quickstart: predict a distributed transaction workload analytically,
//! then check the prediction against the simulated testbed.
//!
//! ```sh
//! cargo run --release -p carat --example quickstart
//! ```

use carat::prelude::*;

fn main() {
    // The MB4 workload of the paper: at each of the two nodes, one user
    // each of local read-only, local update, distributed read-only, and
    // distributed update transactions; every transaction issues 8 requests
    // of 4 records.
    let workload = StandardWorkload::Mb4.spec(2);
    let n_requests = 8;

    // 1. Analytical prediction — milliseconds of CPU time.
    let model = Model::new(ModelConfig::new(workload.clone(), n_requests)).solve();
    println!(
        "analytical model ({} fixed-point iterations):",
        model.convergence.iterations
    );
    for node in &model.nodes {
        println!(
            "  node {}: {:.2} tx/s, CPU {:.0}%, disk {:.0}%, {:.1} I/O-s",
            node.name,
            node.tx_per_s,
            node.cpu_util * 100.0,
            node.disk_util * 100.0,
            node.dio_per_s
        );
        for (ty, t) in &node.per_type {
            println!(
                "    {ty}: {:.3} tx/s, response {:.1} s, P(abort) {:.1}%, {:.2} submissions/commit",
                t.xput_per_s,
                t.response_ms / 1000.0,
                t.p_a * 100.0,
                t.n_s
            );
        }
    }

    // 2. Simulated "measurement" — ten simulated minutes of the CARAT
    //    testbed (2PL + WAL + 2PC against a real block store).
    let mut cfg = SimConfig::new(workload, n_requests, 42);
    cfg.warmup_ms = 60_000.0;
    cfg.measure_ms = 600_000.0;
    let sim = Sim::new(cfg).expect("valid config").run();
    println!("\nsimulated testbed (10 simulated minutes):");
    for node in &sim.nodes {
        println!(
            "  node {}: {:.2} tx/s, CPU {:.0}%, disk {:.0}%, {:.1} I/O-s",
            node.name,
            node.tx_per_s,
            node.cpu_util * 100.0,
            node.disk_util * 100.0,
            node.dio_per_s
        );
    }
    println!(
        "  deadlocks: {} local, {} global ({} probe hops); Pb = {:.3}",
        sim.local_deadlocks,
        sim.global_deadlocks,
        sim.probe_hops,
        sim.blocking_probability()
    );

    // 3. Compare.
    println!("\nmodel vs measurement (TR-XPUT):");
    for i in 0..2 {
        let m = model.nodes[i].tx_per_s;
        let s = sim.nodes[i].tx_per_s;
        println!(
            "  node {}: model {:.2} vs measured {:.2}  ({:+.0}%)",
            model.nodes[i].name,
            m,
            s,
            (m - s) / s * 100.0
        );
    }
}
