//! A guided tour of the simulated CARAT testbed and its storage substrate:
//! runs a full distributed workload, prints the detailed protocol
//! statistics, then demonstrates the recovery machinery (rollback and
//! crash recovery with before-image journaling) on the storage engine
//! directly.
//!
//! ```sh
//! cargo run --release -p carat --example testbed_run
//! ```

use carat::prelude::*;
use carat::storage::{Database, RecordId};

fn main() {
    // ----- 1. Drive the testbed -------------------------------------------
    let mut cfg = SimConfig::new(StandardWorkload::Ub6.spec(2), 12, 2024);
    cfg.warmup_ms = 60_000.0;
    cfg.measure_ms = 600_000.0;
    let report = Sim::new(cfg).expect("valid config").run();

    println!("## UB6 workload, n = 12, ten simulated minutes");
    for node in &report.nodes {
        println!(
            "node {}: {:.2} tx/s | CPU {:.0}% | disk {:.0}% | {:.1} granule I/O-s",
            node.name,
            node.tx_per_s,
            node.cpu_util * 100.0,
            node.disk_util * 100.0,
            node.dio_per_s
        );
        for (ty, t) in &node.per_type {
            println!(
                "   {ty:3}: {:5.3} tx/s  response {:7.1} ms  commits {:4}  aborts {:3}  (N_s = {:.2})",
                t.xput_per_s,
                t.mean_response_ms,
                t.commits,
                t.aborts,
                t.submissions_per_commit()
            );
        }
    }
    println!(
        "locks: {} requests, {} conflicts (Pb = {:.4})",
        report.lock_requests,
        report.lock_conflicts,
        report.blocking_probability()
    );
    println!(
        "deadlocks: {} local (WFG search), {} global ({} Chandy–Misra–Haas probe hops)",
        report.local_deadlocks, report.global_deadlocks, report.probe_hops
    );

    // ----- 2. The storage engine underneath -------------------------------
    println!("\n## Storage engine: before-image journaling in action");
    let mut db = Database::new(100);
    db.load_default();
    let rid = RecordId { block: 10, slot: 3 };
    let original = db.read_committed(rid);
    println!("record {rid:?} initially: {:?}", text(&original));

    // A committed update survives...
    db.begin(1).unwrap();
    db.update_record(1, rid, b"paid:$250").unwrap();
    db.commit(1).unwrap();
    println!(
        "after committed update:   {:?}",
        text(&db.read_committed(rid))
    );

    // ...an aborted one rolls back...
    db.begin(2).unwrap();
    db.update_record(2, rid, b"paid:$999999").unwrap();
    println!(
        "uncommitted scribble:     {:?}",
        text(&db.read_committed(rid))
    );
    db.rollback(2).unwrap();
    println!(
        "after rollback:           {:?}",
        text(&db.read_committed(rid))
    );

    // ...and a crash undoes every loser transaction.
    db.begin(3).unwrap();
    db.update_record(3, rid, b"paid:$0 (crash incoming)")
        .unwrap();
    db.prepare(3).unwrap(); // force the before-image to the journal
    let undone = db.crash_and_recover();
    println!(
        "after crash+recovery:     {:?} (transactions undone: {undone:?})",
        text(&db.read_committed(rid))
    );
    assert_eq!(&db.read_committed(rid)[..9], b"paid:$250");
    println!(
        "journal: {} records appended, {} forced writes",
        db.journal().appends(),
        db.journal().forces()
    );
}

fn text(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes)
        .trim_end_matches('\0')
        .to_string()
}
