//! Deadlock behaviour under growing transaction size — the effect the
//! paper highlights: "the probability that a transaction deadlocks
//! increases rapidly with n", which makes normalized throughput *fall*
//! past n ≈ 8.
//!
//! Compares three views for the MB8 workload:
//!   * the analytical model's `Pb`, `Pd`, `P_a`, `N_s`;
//!   * the simulated testbed's measured conflict/deadlock rates
//!     (local WFG search + Chandy–Misra–Haas probes);
//!   * the blocking-ratio BR ≈ 1/3 claim (paper Eq. 19).
//!
//! ```sh
//! cargo run --release -p carat --example deadlock_study
//! ```

use carat::prelude::*;
use carat::workload::ChainType;

fn main() {
    let wl = StandardWorkload::Mb8;
    println!("## Deadlock growth with transaction size (MB8)");
    println!(
        "| n  | model Pb(LU) | model Pd(LU) | model Pa(LU) | sim Pb | sim Pd|blocked | sim aborts/commit | local DL | global DL | probes |"
    );
    println!(
        "|----|--------------|--------------|--------------|--------|----------------|-------------------|----------|-----------|--------|"
    );
    for n in [4u32, 8, 12, 16, 20] {
        let model = Model::new(ModelConfig::new(wl.spec(2), n)).solve();
        let lu = model.nodes[0]
            .per_chain
            .iter()
            .find(|(c, _)| *c == ChainType::Lu)
            .map(|(_, r)| r.clone())
            .expect("LU chain");

        let mut cfg = SimConfig::new(wl.spec(2), n, 11);
        cfg.warmup_ms = 60_000.0;
        cfg.measure_ms = 600_000.0;
        let sim = Sim::new(cfg).expect("valid config").run();
        let (commits, aborts) = sim
            .nodes
            .iter()
            .flat_map(|nd| nd.per_type.values())
            .fold((0u64, 0u64), |(c, a), t| (c + t.commits, a + t.aborts));

        println!(
            "| {n:2} |       {:6.4} |       {:6.4} |       {:6.3} | {:6.4} |         {:6.3} |            {:6.3} | {:8} | {:9} | {:6} |",
            lu.pb,
            lu.pd,
            lu.p_a,
            sim.blocking_probability(),
            sim.deadlock_given_blocked(),
            aborts as f64 / commits.max(1) as f64,
            sim.local_deadlocks,
            sim.global_deadlocks,
            sim.probe_hops,
        );
    }

    // Blocking ratio: the paper derives BR = (2·N_lk + 1)/(6·N_lk) ≈ 1/3
    // and reports measured values of 0.23–0.41.
    println!("\n## Blocking ratio BR(N_lk) = (2·N_lk + 1) / (6·N_lk)");
    for n in [4u32, 8, 12, 16, 20] {
        let n_lk = n as f64 * 3.99;
        let br = (2.0 * n_lk + 1.0) / (6.0 * n_lk);
        println!("  n = {n:2}:  N_lk ≈ {n_lk:5.1}, BR = {br:.3}");
    }
    println!("  → ≈ 1/3 across the sweep, matching the paper's measured 0.23–0.41 range.");
}
